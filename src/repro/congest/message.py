"""Messages and bandwidth accounting for the CONGEST model.

In the CONGEST model every node may send, per round and per incident
edge, one message of ``O(log n)`` bits.  We model an ``O(log n)``-bit
quantity as one *word*: node identifiers, round numbers, counters bounded
by ``poly(n)``, and quantised weights each fit in a constant number of
words.  A message is a ``kind`` tag plus a small tuple payload; its cost
in words is audited by :func:`payload_words`, and the network enforces a
configurable ``max_words_per_message`` so that accidentally smuggling a
linear-size payload into "one message" raises instead of silently
breaking the model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..errors import BandwidthExceededError


@dataclass(frozen=True, slots=True)
class Message:
    """A single CONGEST message.

    Attributes
    ----------
    kind:
        Protocol tag, e.g. ``"bfs"`` or ``"lca-list"``.  Tags are drawn
        from a constant-size alphabet per algorithm, so they cost O(1)
        bits and are *not* charged words.
    payload:
        Tuple of scalars (ints, floats, strings, small tuples).  Charged
        one word per scalar, recursively.
    words:
        Size of the payload in words, computed once at construction (the
        payload of a frozen message never changes).  The engine reads
        this both at the strict-mode send audit and at delivery
        (metrics) — previously two full recursive recounts per hop; a
        multicast message shared across many edges pays the count
        exactly once.

    The class is slotted: the engine allocates one instance per logical
    message (shared across multicast fan-out and relays), and at P1
    volumes the ``__dict__``-free layout is a measurable share of the
    per-message cost.
    """

    kind: str
    payload: tuple = ()
    words: int = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        # Flat tuples of scalars are the overwhelmingly common payload;
        # count them inline and only recurse for nested containers.
        total = 0
        for item in self.payload:
            if type(item) in _SCALAR_TYPES:
                total += 1
            elif item is not None:
                total += payload_words(item)
        object.__setattr__(self, "words", total)

    # Frozen+slotted dataclasses only pickle out of the box from Python
    # 3.11; the explicit state hooks keep messages picklable on 3.10
    # (node memory containing messages may cross the process backend).
    def __getstate__(self) -> tuple:
        return (self.kind, self.payload, self.words)

    def __setstate__(self, state: tuple) -> None:
        setattr_ = object.__setattr__
        setattr_(self, "kind", state[0])
        setattr_(self, "payload", state[1])
        setattr_(self, "words", state[2])


#: Scalar payload types charged exactly one word (exact type match is the
#: fast path; subclasses fall through to the isinstance check below).
_SCALAR_TYPES = frozenset((int, float, str, bool))


def payload_words(value: Any) -> int:
    """Recursively count the word cost of a payload.

    Scalars cost one word; tuples/lists/frozensets cost the sum of their
    elements (a length prefix is absorbed into the constant).  ``None``
    costs zero (absence flag).
    """
    if value is None:
        return 0
    if type(value) in _SCALAR_TYPES:
        return 1
    if isinstance(value, (tuple, list, frozenset)):
        total = 0
        for item in value:
            if type(item) in _SCALAR_TYPES:
                total += 1
            elif item is not None:
                total += payload_words(item)
        return total
    if isinstance(value, (int, float, str)):
        return 1
    raise BandwidthExceededError(
        f"payload element of type {type(value).__name__} has no defined "
        f"CONGEST size; send scalars or tuples of scalars"
    )


def check_message_size(message: Message, max_words: int) -> None:
    """Raise :class:`BandwidthExceededError` when the message is too big."""
    words = message.words
    if words > max_words:
        raise BandwidthExceededError(
            f"message kind={message.kind!r} carries {words} words, "
            f"exceeding the per-message budget of {max_words} words "
            f"(one word models O(log n) bits)"
        )
