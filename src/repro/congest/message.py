"""Messages and bandwidth accounting for the CONGEST model.

In the CONGEST model every node may send, per round and per incident
edge, one message of ``O(log n)`` bits.  We model an ``O(log n)``-bit
quantity as one *word*: node identifiers, round numbers, counters bounded
by ``poly(n)``, and quantised weights each fit in a constant number of
words.  A message is a ``kind`` tag plus a small tuple payload; its cost
in words is audited by :func:`payload_words`, and the network enforces a
configurable ``max_words_per_message`` so that accidentally smuggling a
linear-size payload into "one message" raises instead of silently
breaking the model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..errors import BandwidthExceededError


@dataclass(frozen=True)
class Message:
    """A single CONGEST message.

    Attributes
    ----------
    kind:
        Protocol tag, e.g. ``"bfs"`` or ``"lca-list"``.  Tags are drawn
        from a constant-size alphabet per algorithm, so they cost O(1)
        bits and are *not* charged words.
    payload:
        Tuple of scalars (ints, floats, strings, small tuples).  Charged
        one word per scalar, recursively.
    """

    kind: str
    payload: tuple = ()

    @property
    def words(self) -> int:
        """Size of the payload in words (see module docstring)."""
        return payload_words(self.payload)


def payload_words(value: Any) -> int:
    """Recursively count the word cost of a payload.

    Scalars cost one word; tuples/lists/frozensets cost the sum of their
    elements (a length prefix is absorbed into the constant).  ``None``
    costs zero (absence flag).
    """
    if value is None:
        return 0
    if isinstance(value, (int, float, str, bool)):
        return 1
    if isinstance(value, (tuple, list, frozenset)):
        return sum(payload_words(item) for item in value)
    raise BandwidthExceededError(
        f"payload element of type {type(value).__name__} has no defined "
        f"CONGEST size; send scalars or tuples of scalars"
    )


def check_message_size(message: Message, max_words: int) -> None:
    """Raise :class:`BandwidthExceededError` when the message is too big."""
    words = message.words
    if words > max_words:
        raise BandwidthExceededError(
            f"message kind={message.kind!r} carries {words} words, "
            f"exceeding the per-message budget of {max_words} words "
            f"(one word models O(log n) bits)"
        )
