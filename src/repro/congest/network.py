"""The synchronous CONGEST engine.

The engine owns, for every directed edge, a FIFO of pending messages.
A round consists of:

1. **delivery** — the head message (if any) of every directed-edge FIFO
   is removed and placed in the receiver's inbox; at most one message
   crosses each edge per direction per round *by construction*, which is
   exactly the CONGEST bandwidth constraint;
2. **computation** — every node with a non-empty inbox (plus nodes that
   requested a tick) runs ``on_round``; messages it sends are appended to
   the FIFOs and become eligible for delivery from the next round on.

Enqueueing many messages at once is therefore legal and models
*pipelining*: `k` messages to the same neighbour drain over `k` rounds.
Strict mode additionally audits every message's size in words
(:mod:`repro.congest.message`), so an algorithm that tries to stuff a
non-constant amount of data into one message fails loudly.

A phase ends at **quiescence**: no FIFO holds a message and no node
requested a tick.  Phases of a larger algorithm share each node's
persistent ``memory`` dict, modelling local storage across phases (the
phase barrier itself is charged by drivers as O(D) where relevant).

Engine internals (PR 3)
-----------------------
The hot loop runs on the graph's cached
:class:`~repro.graphs.index.GraphIndex` rather than on dicts keyed by
``(u, v)`` tuples:

* every directed edge has an integer id; its FIFO lives in a flat slot
  array, and the set of busy edges is an **activation-ordered list** of
  ids (exactly mirroring the old dict's insertion-order iteration, so
  delivery order — and therefore every protocol's output — is
  bit-identical to the legacy loop);
* inboxes are per-node reusable lists indexed by int node id, cleared
  after each computation step instead of reallocated per round;
* the per-round active set is built from int receiver ids and the tick
  set.

The per-node programming API (:class:`~repro.congest.node.NodeContext`
/ :class:`~repro.congest.node.NodeProgram`) is unchanged; node programs
still see original node identifiers everywhere.  The previous dict-based
loop is preserved verbatim in :mod:`repro.congest.legacy` as the
benchmark reference (P1) and the equivalence-test oracle.

One behavioural note: inbox lists are owned by the engine and are only
valid for the duration of the ``on_round`` call — programs must not
store a reference to the inbox itself (storing the messages is fine).
No library program does.
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Hashable
from typing import Any, Optional

from ..errors import CongestError, RoundLimitExceededError
from ..graphs.graph import WeightedGraph
from .message import Message, check_message_size
from .metrics import PhaseMetrics, RunMetrics
from .node import NodeContext, NodeProgram

NodeId = Hashable
ProgramFactory = Callable[[NodeId], NodeProgram]

DEFAULT_MAX_WORDS = 8
DEFAULT_ROUND_LIMIT = 2_000_000


class PhaseResult:
    """Outcome of one phase: metrics plus collected node outputs."""

    def __init__(self, metrics: PhaseMetrics, outputs: dict[NodeId, dict[str, Any]]):
        self.metrics = metrics
        self.outputs = outputs

    def output_map(self, key: str) -> dict[NodeId, Any]:
        """``{node: value}`` for one output key, restricted to nodes that
        produced it."""
        return {u: vals[key] for u, vals in self.outputs.items() if key in vals}


class CongestNetwork:
    """A CONGEST network over a :class:`WeightedGraph`.

    Parameters
    ----------
    graph:
        The communication topology; must be connected for most protocols
        (checked by the algorithms, not the engine).
    max_words_per_message:
        Per-message budget in words (one word models O(log n) bits).
    strict:
        When True (default), oversize messages raise
        :class:`~repro.errors.BandwidthExceededError`.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        max_words_per_message: int = DEFAULT_MAX_WORDS,
        strict: bool = True,
        tracer=None,
    ) -> None:
        self.graph = graph
        self.strict = strict
        self.tracer = tracer
        self.max_words_per_message = max_words_per_message
        index = graph.index()
        self.index = index
        self._nodes: tuple[NodeId, ...] = index.nodes
        # Original-id views shared with (and cached on) the graph index;
        # node programs read these through their NodeContext.
        self._neighbors = index.neighbor_lists
        self._weights = index.weight_maps
        # Per-directed-edge source node in original-id space (inbox
        # entries and tracer events carry original identifiers).
        self._edge_src_node = [index.nodes[i] for i in index.edge_source]
        self.memory: dict[NodeId, dict[str, Any]] = {u: {} for u in self._nodes}
        self.metrics = RunMetrics()
        # Reusable per-node contexts: rebound (memory/outputs/round) at
        # the start of every phase instead of reconstructed.
        n = len(self._nodes)
        self._contexts: list[NodeContext] = [
            NodeContext(
                node=u,
                neighbors=self._neighbors[i],
                weights=self._weights[i],
                network_size=n,
                memory=self.memory[u],
                outputs={},
            )
            for i, u in enumerate(self._nodes)
        ]

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        """All nodes, in index order (a cached tuple — hot loops may
        read this property per iteration without paying a copy)."""
        return self._nodes

    @property
    def size(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    def reset_memory(self) -> None:
        """Clear all persistent node memory (fresh computation)."""
        self.memory = {u: {} for u in self._nodes}

    def run_phase(
        self,
        name: str,
        program_factory: ProgramFactory,
        max_rounds: Optional[int] = None,
    ) -> PhaseResult:
        """Run one phase to quiescence and record its metrics.

        ``program_factory(node)`` builds the per-node program.  Raises
        :class:`RoundLimitExceededError` if quiescence is not reached
        within ``max_rounds`` (default: a large engine-level limit that
        only trips on livelocked protocols).
        """
        limit = max_rounds if max_rounds is not None else DEFAULT_ROUND_LIMIT
        phase = PhaseMetrics(name=name)
        index = self.index
        nodes = self._nodes
        n = len(nodes)
        node_id = index.node_id
        edge_id_maps = index.edge_id_maps
        adj_target = index.adj_target
        edge_src_node = self._edge_src_node
        strict = self.strict
        max_words = self.max_words_per_message
        tracer = self.tracer

        outputs: dict[NodeId, dict[str, Any]] = {u: {} for u in nodes}
        contexts = self._contexts
        programs: list[NodeProgram] = []
        for i, u in enumerate(nodes):
            ctx = contexts[i]
            ctx.memory = self.memory[u]
            ctx._outputs = outputs[u]
            ctx.round = 0
            ctx._outbox.clear()
            ctx._tick_requested = False
            programs.append(program_factory(u))

        # Slot-based message buffers: one FIFO per directed edge id,
        # created lazily; `active_edges` lists busy edge ids in
        # activation order (append on first enqueue, compact on empty),
        # which reproduces the legacy dict's insertion-order delivery.
        queues: list[Optional[deque[Message]]] = [None] * index.directed_edge_count
        active_edges: list[int] = []
        inboxes: list[list[tuple[NodeId, Message]]] = [[] for _ in range(n)]
        receivers: list[int] = []
        tick_nodes: set[NodeId] = set()

        def flush_outbox(i: int, ctx: NodeContext) -> None:
            outbox = ctx._outbox
            if outbox:
                edge_ids = edge_id_maps[i]
                backlog = phase.max_edge_backlog
                for v, msg in outbox:
                    if strict and msg.words > max_words:
                        check_message_size(msg, max_words)  # raises
                    e = edge_ids[v]
                    queue = queues[e]
                    if queue is None:
                        queue = queues[e] = deque()
                    if not queue:
                        active_edges.append(e)
                    queue.append(msg)
                    if len(queue) > backlog:
                        backlog = len(queue)
                phase.max_edge_backlog = backlog
                outbox.clear()
            if ctx._tick_requested:
                ctx._tick_requested = False
                tick_nodes.add(ctx.node)

        # Round 0: on_start for everyone.
        for i in range(n):
            ctx = contexts[i]
            programs[i].on_start(ctx)
            if ctx._outbox or ctx._tick_requested:
                flush_outbox(i, ctx)

        rounds = 0
        message_count = 0
        word_count = 0
        max_word = 0
        while active_edges or tick_nodes:
            if rounds >= limit:
                raise RoundLimitExceededError(
                    f"phase {name!r} did not reach quiescence within "
                    f"{limit} rounds ({len(active_edges)} busy edges)"
                )
            rounds += 1
            # 1. Delivery: one message per busy directed edge, scanned
            # in activation order over the flat edge-id list.  Message
            # metrics accumulate in locals (folded into the phase after
            # quiescence) — per-message method calls are pure overhead
            # at this volume.
            still_active: list[int] = []
            for e in active_edges:
                queue = queues[e]
                msg = queue.popleft()
                w = msg.words
                message_count += 1
                word_count += w
                if w > max_word:
                    max_word = w
                dst = adj_target[e]
                if tracer is not None:
                    tracer.record(
                        name, rounds, edge_src_node[e], nodes[dst], msg
                    )
                box = inboxes[dst]
                if not box:
                    receivers.append(dst)
                box.append((edge_src_node[e], msg))
                if queue:
                    still_active.append(e)
            active_edges = still_active
            # 2. Computation for receivers and tick requesters.  The
            # active set is built over *original* node ids, via the same
            # set(dict) | set construction as the legacy engine, so its
            # iteration order — and therefore every downstream
            # accumulation order — matches the legacy loop exactly.
            active = set(dict.fromkeys(nodes[i] for i in receivers)) | tick_nodes
            tick_nodes = set()
            for u in active:
                i = node_id[u]
                ctx = contexts[i]
                ctx.round = rounds
                programs[i].on_round(ctx, inboxes[i])
                if ctx._outbox or ctx._tick_requested:
                    flush_outbox(i, ctx)
            for i in receivers:
                inboxes[i].clear()
            receivers.clear()

        phase.rounds = rounds
        phase.messages = message_count
        phase.words = word_count
        phase.max_message_words = max_word
        for i in range(n):
            programs[i].on_stop(contexts[i])
            if contexts[i]._outbox:
                raise CongestError(
                    f"node {nodes[i]!r} attempted to send from on_stop "
                    f"in phase {name!r}"
                )
        self.metrics.add_phase(phase)
        return PhaseResult(phase, outputs)

    # ------------------------------------------------------------------
    def charge(self, rounds: int, note: str) -> None:
        """Record an analytic round cost (substituted subroutine)."""
        self.metrics.charge(rounds, note)

    def memory_map(self, key: str) -> dict[NodeId, Any]:
        """``{node: memory[key]}`` over nodes that have ``key`` set."""
        return {u: mem[key] for u, mem in self.memory.items() if key in mem}
