"""The synchronous CONGEST engine.

The engine owns, for every directed edge, a FIFO of pending messages.
A round consists of:

1. **delivery** — the head message (if any) of every directed-edge FIFO
   is removed and placed in the receiver's inbox; at most one message
   crosses each edge per direction per round *by construction*, which is
   exactly the CONGEST bandwidth constraint;
2. **computation** — every node with a non-empty inbox (plus nodes that
   requested a tick) runs ``on_round``; messages it sends are appended to
   the FIFOs and become eligible for delivery from the next round on.

Enqueueing many messages at once is therefore legal and models
*pipelining*: `k` messages to the same neighbour drain over `k` rounds.
Strict mode additionally audits every message's size in words
(:mod:`repro.congest.message`), so an algorithm that tries to stuff a
non-constant amount of data into one message fails loudly.

A phase ends at **quiescence**: no FIFO holds a message and no node
requested a tick.  Phases of a larger algorithm share each node's
persistent ``memory`` dict, modelling local storage across phases (the
phase barrier itself is charged by drivers as O(D) where relevant).

Engine internals (PR 3 + PR 7)
------------------------------
The hot loop runs on the graph's cached
:class:`~repro.graphs.index.GraphIndex` rather than on dicts keyed by
``(u, v)`` tuples: every directed edge has an integer id; its FIFO
lives in a flat slot array, and the set of busy edges is an
**activation-ordered list** of ids (exactly mirroring the original
dict's insertion-order iteration, so delivery order — and therefore
every protocol's output — is bit-identical across engines).

PR 7 turned the round loop into a **batched delivery engine** with three
selectable implementations behind the unchanged :meth:`run_phase`
contract (``CongestNetwork(engine=...)`` / ``$REPRO_CONGEST_ENGINE``,
values ``auto``/``batched``/``numpy``/``per-message``):

``batched`` (pure Python, the no-dependency baseline)
    * all per-edge structures — FIFOs, bound ``popleft``/inbox-append
      methods, run-expiry slots — are built **once per network** (sized
      by :meth:`~repro.graphs.index.GraphIndex.delivery_arrays` and
      invalidated with it) instead of once per phase;
    * FIFOs hold prebuilt ``(src, msg)`` inbox entries, built once per
      logical message at flush time — a multicast shares one entry
      across its whole fan-out, so delivery is a single bound-method
      append per edge;
    * message/word metrics are logged as one int per enqueue and folded
      by bulk reduction (``len``/``sum``/``max``) at quiescence, and
      backlog/expiry bookkeeping runs once per touched edge per round,
      not once per message — no per-message branches anywhere;
    * multi-message FIFOs are scheduled as **runs**: enqueueing ``k``
      messages records the run's expiry round once, and rounds in which
      no run expires, no edge activates, and no tick fires reuse the
      busy list, the receiver set, and the touched-inbox list verbatim
      instead of re-scanning and rebuilding them — a ``k``-deep drain
      pays the frontier bookkeeping once, not ``k`` times.

``numpy`` (optional fast path)
    The same run-scheduled loop, with the frontier mirrored in
    ``np.int64`` arrays: per-edge pending counts maintained per round
    detect expiring runs with one vectorized compare, pruning is a
    boolean mask instead of a rescan, and on wide rounds the receiver
    set is built by fancy-indexing the precomputed edge→destination
    array (:meth:`~repro.graphs.index.GraphIndex.delivery_arrays`) and
    first-occurrence reduction instead of per-edge branching.  Falls
    back to ``batched`` when numpy is not importable.

``per-message``
    The PR 3 loop — one branch per message hop — kept as the semantic
    oracle and the tracing path: a :class:`MessageTracer` must observe
    every hop in delivery order, so attaching one silently selects this
    path whatever engine was requested (see
    :attr:`CongestNetwork.active_engine`); it is also explicitly
    selectable via ``engine="per-message"``.

All paths produce bit-identical delivery and activation order — the
activation-ordered busy list, the ``set(first-touch receivers) | ticks``
active-set construction, and FIFO order are preserved exactly, which
``tests/test_congest_engine_equivalence.py`` asserts with the
per-message path as the oracle for every protocol in the library,
hypothesis-generated programs included.  (The original PR 3
standalone loop — ``repro.congest.legacy`` — was retired after two PRs
of parity; the per-message engine shares its dispatch semantics.)

The per-node programming API (:class:`~repro.congest.node.NodeContext`
/ :class:`~repro.congest.node.NodeProgram`) is unchanged; node programs
still see original node identifiers everywhere.

One behavioural note: inbox lists are owned by the engine and are only
valid for the duration of the ``on_round`` call — programs must not
store a reference to the inbox itself (storing the messages is fine).
No library program does.
"""

from __future__ import annotations

import os
import time
from collections import deque
from collections.abc import Callable, Hashable
from typing import Any, Optional

from ..errors import CongestError, RoundLimitExceededError
from ..graphs.graph import WeightedGraph
from .message import Message, check_message_size
from .metrics import PhaseMetrics, RunMetrics
from .node import NodeContext, NodeProgram

NodeId = Hashable
ProgramFactory = Callable[[NodeId], NodeProgram]

DEFAULT_MAX_WORDS = 8
DEFAULT_ROUND_LIMIT = 2_000_000

#: Valid values for ``CongestNetwork(engine=...)`` / $REPRO_CONGEST_ENGINE.
ENGINE_CHOICES = ("auto", "batched", "numpy", "per-message")

#: Environment knob holding the process-wide default engine.
ENGINE_ENV_VAR = "REPRO_CONGEST_ENGINE"

#: Frontier width from which the numpy engine builds the receiver set by
#: fancy indexing + first-occurrence reduction; below it, per-edge
#: branching beats the fixed cost of the vectorized calls.
_NUMPY_RECEIVER_THRESHOLD = 192

_numpy_module: Any = None  # unresolved sentinel; False once probed absent


def _numpy():
    """The numpy module, or ``None`` when not importable (probed once)."""
    global _numpy_module
    if _numpy_module is None:
        try:
            import numpy

            _numpy_module = numpy
        except ImportError:
            _numpy_module = False
    return _numpy_module if _numpy_module is not False else None


def numpy_available() -> bool:
    """True when the optional numpy delivery engine can run."""
    return _numpy() is not None


def resolve_engine(requested: Optional[str] = None) -> str:
    """Resolve an engine request to the effective engine name.

    ``requested=None`` reads ``$REPRO_CONGEST_ENGINE`` (default
    ``auto``).  ``auto`` selects ``numpy`` when numpy is importable and
    ``batched`` otherwise; an explicit ``numpy`` request also degrades
    to ``batched`` on numpy-free installs — the fallback guarantee the
    CI no-numpy leg pins down.  ``batched`` and ``per-message`` resolve
    to themselves.  Unknown names raise
    :class:`~repro.errors.CongestError`.
    """
    name = requested if requested is not None else os.environ.get(ENGINE_ENV_VAR)
    if not name:
        name = "auto"
    if name not in ENGINE_CHOICES:
        raise CongestError(
            f"unknown congest engine {name!r}; expected one of "
            f"{', '.join(ENGINE_CHOICES)}"
        )
    if name == "auto":
        return "numpy" if numpy_available() else "batched"
    if name == "numpy" and not numpy_available():
        return "batched"
    return name


class PhaseResult:
    """Outcome of one phase: metrics plus collected node outputs."""

    def __init__(self, metrics: PhaseMetrics, outputs: dict[NodeId, dict[str, Any]]):
        self.metrics = metrics
        self.outputs = outputs

    def output_map(self, key: str) -> dict[NodeId, Any]:
        """``{node: value}`` for one output key, restricted to nodes that
        produced it."""
        return {u: vals[key] for u, vals in self.outputs.items() if key in vals}


class _EngineState:
    """Per-network persistent delivery structures (batched/numpy paths).

    Everything here is sized by the directed-edge/node counts and is a
    pure function of the graph index, so it is built once and reused by
    every subsequent phase: the FIFOs, their bound ``popleft`` methods,
    the per-receiver inbox lists with bound ``append`` methods, and the
    run-expiry slots.  All FIFOs are empty and all runs expired at
    quiescence, which is what makes cross-phase reuse sound; a phase
    that aborts (round limit, bandwidth audit, a raising program) leaves
    the structures mid-flight, so :meth:`CongestNetwork.run_phase` drops
    the state on any exception and the next phase rebuilds it.

    The state is keyed on the index's
    :class:`~repro.graphs.index.DeliveryArrays` *identity*: an in-place
    index patch (:mod:`repro.dynamic.incremental`) invalidates the
    delivery arrays, the identity changes, and the stale state is
    rebuilt.  ``rounds_base`` is a monotonically increasing round clock
    spanning phases, so absolute expiry rounds recorded in one phase can
    never alias rounds of a later one.
    """

    __slots__ = (
        "delivery",
        "queues",
        "pops",
        "inboxes",
        "box_appends",
        "expiry",
        "expire_counts",
        "rounds_base",
        "pending_np",
    )

    def __init__(self, index, delivery, with_numpy: bool) -> None:
        edge_count = index.directed_edge_count
        self.delivery = delivery
        self.queues = [deque() for _ in range(edge_count)]
        self.pops = [q.popleft for q in self.queues]
        self.inboxes: list[list] = [[] for _ in range(len(index.nodes))]
        self.box_appends = [self.inboxes[j].append for j in index.adj_target]
        self.expiry = [0] * edge_count
        self.expire_counts: dict[int, int] = {}
        self.rounds_base = 0
        self.pending_np = None
        if with_numpy:
            np = _numpy()
            self.pending_np = np.zeros(edge_count, dtype=np.int64)


class CongestNetwork:
    """A CONGEST network over a :class:`WeightedGraph`.

    Parameters
    ----------
    graph:
        The communication topology; must be connected for most protocols
        (checked by the algorithms, not the engine).
    max_words_per_message:
        Per-message budget in words (one word models O(log n) bits).
    strict:
        When True (default), oversize messages raise
        :class:`~repro.errors.BandwidthExceededError`.
    tracer:
        Optional :class:`~repro.congest.trace.MessageTracer`.  Tracers
        observe every hop, so a non-None tracer silently pins the
        engine to the per-message path whatever ``engine`` says.
    engine:
        Delivery engine: ``"auto"`` (default; numpy when available),
        ``"batched"`` (pure Python), ``"numpy"``, or ``"per-message"``
        (the unbatched oracle loop tracers use).  ``None`` defers to
        ``$REPRO_CONGEST_ENGINE``.  All engines are bit-identical in
        delivery order, metrics, and outputs — the knob only trades
        implementation.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        max_words_per_message: int = DEFAULT_MAX_WORDS,
        strict: bool = True,
        tracer=None,
        engine: Optional[str] = None,
    ) -> None:
        if engine is not None and engine not in ENGINE_CHOICES:
            raise CongestError(
                f"unknown congest engine {engine!r}; expected one of "
                f"{', '.join(ENGINE_CHOICES)}"
            )
        self.graph = graph
        self.strict = strict
        self.tracer = tracer
        self.engine = engine
        self.max_words_per_message = max_words_per_message
        index = graph.index()
        self.index = index
        self._nodes: tuple[NodeId, ...] = index.nodes
        # Original-id views shared with (and cached on) the graph index;
        # node programs read these through their NodeContext.
        self._neighbors = index.neighbor_lists
        self._weights = index.weight_maps
        self.memory: dict[NodeId, dict[str, Any]] = {u: {} for u in self._nodes}
        self.metrics = RunMetrics()
        self._state: Optional[_EngineState] = None
        # Reusable per-node contexts: rebound (memory/outputs/round) at
        # the start of every phase instead of reconstructed.
        n = len(self._nodes)
        self._contexts: list[NodeContext] = [
            NodeContext(
                node=u,
                neighbors=self._neighbors[i],
                weights=self._weights[i],
                network_size=n,
                memory=self.memory[u],
                outputs={},
            )
            for i, u in enumerate(self._nodes)
        ]

    @property
    def nodes(self) -> tuple[NodeId, ...]:
        """All nodes, in index order (a cached tuple — hot loops may
        read this property per iteration without paying a copy)."""
        return self._nodes

    @property
    def size(self) -> int:
        return len(self._nodes)

    @property
    def active_engine(self) -> str:
        """The delivery path :meth:`run_phase` will actually take.

        ``"per-message"`` whenever a tracer is attached (tracers must
        see every hop); otherwise the resolved ``engine`` argument /
        ``$REPRO_CONGEST_ENGINE`` — ``"numpy"`` or ``"batched"``.
        """
        if self.tracer is not None:
            return "per-message"
        return resolve_engine(self.engine)

    def _engine_state(self, with_numpy: bool) -> _EngineState:
        """The persistent delivery structures, (re)built when absent,
        stale against the index's delivery arrays, or missing the numpy
        mirror the requested path needs."""
        delivery = self.index.delivery_arrays()
        state = self._state
        if (
            state is None
            or state.delivery is not delivery
            or (with_numpy and state.pending_np is None)
        ):
            state = self._state = _EngineState(self.index, delivery, with_numpy)
        return state

    # ------------------------------------------------------------------
    def reset_memory(self) -> None:
        """Clear all persistent node memory (fresh computation)."""
        self.memory = {u: {} for u in self._nodes}

    def run_phase(
        self,
        name: str,
        program_factory: ProgramFactory,
        max_rounds: Optional[int] = None,
    ) -> PhaseResult:
        """Run one phase to quiescence and record its metrics.

        ``program_factory(node)`` builds the per-node program.  Raises
        :class:`RoundLimitExceededError` if quiescence is not reached
        within ``max_rounds`` (default: a large engine-level limit that
        only trips on livelocked protocols).  The phase's wall-clock
        duration is recorded on ``PhaseMetrics.wall_time``.
        """
        started = time.perf_counter()
        limit = max_rounds if max_rounds is not None else DEFAULT_ROUND_LIMIT
        phase = PhaseMetrics(name=name)
        nodes = self._nodes
        outputs: dict[NodeId, dict[str, Any]] = {u: {} for u in nodes}
        contexts = self._contexts
        programs: list[NodeProgram] = []
        for i, u in enumerate(nodes):
            ctx = contexts[i]
            ctx.memory = self.memory[u]
            ctx._outputs = outputs[u]
            ctx.round = 0
            ctx._outbox.clear()
            ctx._tick_requested = False
            programs.append(program_factory(u))

        engine = self.active_engine
        try:
            if engine == "numpy":
                self._phase_numpy(name, phase, programs, limit)
            elif engine == "batched":
                self._phase_batched(name, phase, programs, limit)
            else:
                self._phase_permessage(name, phase, programs, limit)
        except BaseException:
            # An aborted phase leaves FIFOs / expiry mid-flight; drop
            # the persistent structures so the next phase starts clean.
            self._state = None
            raise

        for i in range(len(nodes)):
            programs[i].on_stop(contexts[i])
            if contexts[i]._outbox:
                raise CongestError(
                    f"node {nodes[i]!r} attempted to send from on_stop "
                    f"in phase {name!r}"
                )
        phase.wall_time = time.perf_counter() - started
        self.metrics.add_phase(phase)
        return PhaseResult(phase, outputs)

    # -- batched engine (pure Python) ----------------------------------
    def _phase_batched(
        self,
        name: str,
        phase: PhaseMetrics,
        programs: list[NodeProgram],
        limit: int,
    ) -> None:
        """Run-scheduled batched loop; see the module docstring.

        Delivery order is bit-identical to the per-message path: the
        busy-edge list is activation-ordered and pruned in place, the
        active set is built from first-touch receivers, and FIFOs keep
        enqueue order.  The batching only removes redundant bookkeeping
        — metrics move to flush-time logs with one bulk reduction,
        expiry/backlog fixup runs once per touched edge per round, and
        frontier structures are reused across rounds in which no run
        expires, activates, or ticks.
        """
        index = self.index
        nodes = self._nodes
        n = len(nodes)
        node_id = index.node_id
        edge_id_maps = index.edge_id_maps
        adj_target = index.adj_target
        strict = self.strict
        max_words = self.max_words_per_message
        contexts = self._contexts
        handlers = [p.on_round for p in programs]

        state = self._engine_state(with_numpy=False)
        queues = state.queues
        pops = state.pops
        inboxes = state.inboxes
        box_appends = state.box_appends
        dst_nodes = state.delivery.target_nodes
        expiry = state.expiry
        expire_counts = state.expire_counts
        rounds_g = state.rounds_base  # cross-phase monotonic round clock

        active_edges: list[int] = []
        active_append = active_edges.append
        tick_nodes: set[NodeId] = set()
        touched_edges: list[int] = []  # flushed-to this round
        touched_append = touched_edges.append
        frontier_valid = False
        active: set = set()
        active_rows = None  # resolved dispatch rows for a stable window
        touched: list[list] = []
        # Receiver memo: a pipelined steady state (relay edges emptying
        # and refilling every round) re-derives the same receiver list
        # round after round even though the frontier churns.  When the
        # freshly built list equals the previous round's (cheap: the
        # elements are usually identical objects) we reuse the set and
        # dispatch rows built then.  Bit-identical: the memoized set was
        # constructed from the same insertion sequence a rebuild would
        # use, so its iteration order matches the rebuild's exactly.
        memo_receivers: list[NodeId] | None = None
        memo_active: set = set()
        memo_rows = None

        # Metrics: one append per enqueued copy, reduced in bulk after
        # quiescence (tentpole: no per-message branches on delivery).
        words_log: list[int] = []
        words_append = words_log.append
        max_backlog = 0
        rounds = 0

        def flush_outbox(i: int, ctx: NodeContext) -> None:
            nonlocal frontier_valid
            outbox = ctx._outbox
            if outbox:
                edge_ids = edge_id_maps[i]
                node_u = nodes[i]
                prev = None
                entry = None
                w = 0
                last_e = -1
                for v, msg in outbox:
                    if msg is not prev:
                        prev = msg
                        w = msg.words
                        if strict and w > max_words:
                            check_message_size(msg, max_words)  # raises
                        entry = (node_u, msg)
                    words_append(w)
                    e = edge_ids[v]
                    queue = queues[e]
                    if not queue:
                        active_append(e)
                        frontier_valid = False
                    queue.append(entry)
                    if e != last_e:
                        # Deferred per-edge fixup; an interleaved resend
                        # may duplicate an id, which the fixup tolerates.
                        touched_append(e)
                        last_e = e
                outbox.clear()
            if ctx._tick_requested:
                ctx._tick_requested = False
                tick_nodes.add(ctx.node)

        # Round 0: on_start for everyone.
        for i in range(n):
            ctx = contexts[i]
            programs[i].on_start(ctx)
            if ctx._outbox or ctx._tick_requested:
                flush_outbox(i, ctx)

        while True:
            # Per-touched-edge (not per-message) end-of-round fixup:
            # record the run's absolute expiry round and fold the edge's
            # depth into the backlog high-water mark.  Each edge has one
            # sender, so at most one flush touches it per round and
            # len(queue) here is its peak depth for the round.
            if touched_edges:
                for e in touched_edges:
                    depth = len(queues[e])
                    if depth > max_backlog:
                        max_backlog = depth
                    old = expiry[e]
                    if old > rounds_g:  # live run rescheduled
                        expire_counts[old] -= 1
                    end = rounds_g + depth
                    expiry[e] = end
                    expire_counts[end] = expire_counts.get(end, 0) + 1
                touched_edges.clear()
            if not active_edges and not tick_nodes:
                break
            if rounds >= limit:
                raise RoundLimitExceededError(
                    f"phase {name!r} did not reach quiescence within "
                    f"{limit} rounds ({len(active_edges)} busy edges)"
                )
            rounds += 1
            rounds_g += 1
            ending = expire_counts.pop(rounds_g, 0)
            if frontier_valid and not ending and not tick_nodes:
                # Stable window: same busy edges, same receivers, same
                # touched inboxes as last round — deliver and go.  The
                # dispatch rows (context, handler, inbox per receiver)
                # are also fixed, so resolve them once per window.
                for e in active_edges:
                    box_appends[e](pops[e]())
                if active_rows is None:
                    active_rows = [
                        (j, contexts[j], handlers[j], inboxes[j])
                        for j in (node_id[u] for u in active)
                    ]
                for i, ctx, handler, box in active_rows:
                    ctx.round = rounds
                    handler(ctx, box)
                    if ctx._outbox or ctx._tick_requested:
                        flush_outbox(i, ctx)
                for box in touched:
                    box.clear()
                continue
            else:
                receiver_nodes: list[NodeId] = []
                rn_append = receiver_nodes.append
                t_append = (touched := []).append
                if ending:
                    still: list[int] = []
                    s_append = still.append
                    for e in active_edges:
                        queue = queues[e]
                        entry = queue.popleft()
                        box = inboxes[adj_target[e]]
                        if not box:
                            rn_append(dst_nodes[e])
                            t_append(box)
                        box.append(entry)
                        if queue:
                            s_append(e)
                    active_edges = still
                    active_append = active_edges.append
                    frontier_valid = False
                else:
                    for e in active_edges:
                        box = inboxes[adj_target[e]]
                        if not box:
                            rn_append(dst_nodes[e])
                            t_append(box)
                        box.append(pops[e]())
                    frontier_valid = not tick_nodes
                # Same construction as the per-message oracle: a set
                # built *from a dict* in first-touch order, then the
                # tick union.  The dict detour is loadbearing — CPython
                # presizes a set built from a dict but grows one built
                # from a list incrementally, and the two table layouts
                # can iterate in different orders for the same elements.
                # The oracle iterates a set built from a dict, so
                # matching its dispatch order bit for bit requires the
                # same construction, not merely the same elements.
                if not tick_nodes and receiver_nodes == memo_receivers:
                    active = memo_active
                    active_rows = memo_rows
                else:
                    active = set(dict.fromkeys(receiver_nodes)) | tick_nodes
                    active_rows = None
                    if tick_nodes:
                        tick_nodes = set()
                        memo_receivers = None
                    else:
                        memo_receivers = receiver_nodes
                        memo_active = active
                    memo_rows = None
            if active_rows is None:
                active_rows = [
                    (j, contexts[j], handlers[j], inboxes[j])
                    for j in (node_id[u] for u in active)
                ]
                if memo_receivers is receiver_nodes:
                    memo_rows = active_rows
            for i, ctx, handler, box in active_rows:
                ctx.round = rounds
                handler(ctx, box)
                if ctx._outbox or ctx._tick_requested:
                    flush_outbox(i, ctx)
            for box in touched:
                box.clear()

        state.rounds_base = rounds_g
        phase.rounds = rounds
        phase.messages = len(words_log)
        phase.words = sum(words_log)
        phase.max_message_words = max(words_log, default=0)
        phase.max_edge_backlog = max_backlog

    # -- numpy engine ---------------------------------------------------
    def _phase_numpy(
        self,
        name: str,
        phase: PhaseMetrics,
        programs: list[NodeProgram],
        limit: int,
    ) -> None:
        """Run-scheduled loop with a numpy-mirrored frontier.

        Identical delivery/activation order to the batched path.  The
        differences are representational: per-edge pending counts live
        in an ``np.int64`` array maintained at the per-round fixup, run
        expiry is detected by one vectorized compare instead of per-run
        counter dicts, pruning is a boolean mask over the frontier
        array, and wide rounds build the receiver set by fancy-indexing
        the precomputed edge→destination array with a first-occurrence
        reduction (``np.unique``) instead of per-edge branching.
        """
        np = _numpy()
        index = self.index
        nodes = self._nodes
        n = len(nodes)
        node_id = index.node_id
        edge_id_maps = index.edge_id_maps
        adj_target = index.adj_target
        strict = self.strict
        max_words = self.max_words_per_message
        contexts = self._contexts
        handlers = [p.on_round for p in programs]

        state = self._engine_state(with_numpy=True)
        queues = state.queues
        pops = state.pops
        inboxes = state.inboxes
        box_appends = state.box_appends
        dst_nodes = state.delivery.target_nodes
        target_ids_np = state.delivery.target_ids_np
        pending = state.pending_np

        active_edges: list[int] = []
        active_append = active_edges.append
        tick_nodes: set[NodeId] = set()
        touched_edges: list[int] = []
        touched_append = touched_edges.append
        frontier = np.empty(0, dtype=np.int64)  # mirrors active_edges
        frontier_stale = False  # activation appended since last mirror
        frontier_valid = False  # receiver/touched/active reusable
        active: set = set()
        active_rows = None  # resolved dispatch rows for a stable window
        touched: list[list] = []
        # Receiver memo — see _phase_batched for the order argument.
        memo_receivers: list[NodeId] | None = None
        memo_active: set = set()
        memo_rows = None
        # Wide-round memo: destination array equality short-circuits the
        # unique/ordering reduction (receivers depend only on ``dsts``,
        # not on ticks, so this memo survives tick rounds).
        memo_dsts = None
        memo_wide_receivers: list[NodeId] = []
        memo_touched: list[list] = []

        words_log: list[int] = []
        words_append = words_log.append
        max_backlog = 0
        rounds = 0

        def flush_outbox(i: int, ctx: NodeContext) -> None:
            nonlocal frontier_valid, frontier_stale
            outbox = ctx._outbox
            if outbox:
                edge_ids = edge_id_maps[i]
                node_u = nodes[i]
                prev = None
                entry = None
                w = 0
                last_e = -1
                for v, msg in outbox:
                    if msg is not prev:
                        prev = msg
                        w = msg.words
                        if strict and w > max_words:
                            check_message_size(msg, max_words)  # raises
                        entry = (node_u, msg)
                    words_append(w)
                    e = edge_ids[v]
                    queue = queues[e]
                    if not queue:
                        active_append(e)
                        frontier_valid = False
                        frontier_stale = True
                    queue.append(entry)
                    if e != last_e:
                        touched_append(e)
                        last_e = e
                outbox.clear()
            if ctx._tick_requested:
                ctx._tick_requested = False
                tick_nodes.add(ctx.node)

        for i in range(n):
            ctx = contexts[i]
            programs[i].on_start(ctx)
            if ctx._outbox or ctx._tick_requested:
                flush_outbox(i, ctx)

        while True:
            if touched_edges:
                # Vectorized fixup: one fancy-index assignment per round
                # instead of one numpy scalar store per touched edge
                # (duplicated ids carry equal depths, so last-wins
                # assignment is exact).
                depths = [len(queues[e]) for e in touched_edges]
                peak = max(depths)
                if peak > max_backlog:
                    max_backlog = peak
                pending[touched_edges] = depths
                touched_edges.clear()
            if not active_edges and not tick_nodes:
                break
            if rounds >= limit:
                raise RoundLimitExceededError(
                    f"phase {name!r} did not reach quiescence within "
                    f"{limit} rounds ({len(active_edges)} busy edges)"
                )
            rounds += 1
            if frontier_stale:
                frontier = np.asarray(active_edges, dtype=np.int64)
                frontier_stale = False
            remaining = pending[frontier]
            ending = bool((remaining == 1).any()) if active_edges else False
            if frontier_valid and not ending and not tick_nodes:
                for e in active_edges:
                    box_appends[e](pops[e]())
                pending[frontier] = remaining - 1
                if active_rows is None:
                    active_rows = [
                        (j, contexts[j], handlers[j], inboxes[j])
                        for j in (node_id[u] for u in active)
                    ]
                for i, ctx, handler, box in active_rows:
                    ctx.round = rounds
                    handler(ctx, box)
                    if ctx._outbox or ctx._tick_requested:
                        flush_outbox(i, ctx)
                for box in touched:
                    box.clear()
                continue
            else:
                receiver_nodes: list[NodeId] = []
                if len(active_edges) >= _NUMPY_RECEIVER_THRESHOLD:
                    # Receiver set vectorized: destinations by fancy
                    # index, first-occurrence order via np.unique's
                    # return_index (argsort restores activation order).
                    # A pipelined steady state presents the same
                    # destination array round after round; one array
                    # compare then reuses the previous reduction.
                    dsts = target_ids_np[frontier]
                    if memo_dsts is not None and np.array_equal(dsts, memo_dsts):
                        receiver_nodes = memo_wide_receivers
                        touched = memo_touched
                    else:
                        uniq, first_pos = np.unique(dsts, return_index=True)
                        order = uniq[np.argsort(first_pos)].tolist()
                        receiver_nodes = [nodes[j] for j in order]
                        touched = [inboxes[j] for j in order]
                        memo_dsts = dsts
                        memo_wide_receivers = receiver_nodes
                        memo_touched = touched
                    for e in active_edges:
                        box_appends[e](pops[e]())
                else:
                    rn_append = receiver_nodes.append
                    t_append = (touched := []).append
                    for e in active_edges:
                        box = inboxes[adj_target[e]]
                        if not box:
                            rn_append(dst_nodes[e])
                            t_append(box)
                        box.append(pops[e]())
                pending[frontier] = remaining - 1
                if ending:
                    # Prune expired runs with a mask; order within the
                    # frontier array is preserved, so activation order
                    # survives vectorized pruning.
                    frontier = frontier[remaining > 1]
                    active_edges = frontier.tolist()
                    active_append = active_edges.append
                    frontier_valid = False
                else:
                    frontier_valid = not tick_nodes
                # Dict-detour set construction — see _phase_batched.
                if not tick_nodes and receiver_nodes == memo_receivers:
                    active = memo_active
                    active_rows = memo_rows
                else:
                    active = set(dict.fromkeys(receiver_nodes)) | tick_nodes
                    active_rows = None
                    if tick_nodes:
                        tick_nodes = set()
                        memo_receivers = None
                    else:
                        memo_receivers = receiver_nodes
                        memo_active = active
                    memo_rows = None
            if active_rows is None:
                active_rows = [
                    (j, contexts[j], handlers[j], inboxes[j])
                    for j in (node_id[u] for u in active)
                ]
                if memo_receivers is receiver_nodes:
                    memo_rows = active_rows
            for i, ctx, handler, box in active_rows:
                ctx.round = rounds
                handler(ctx, box)
                if ctx._outbox or ctx._tick_requested:
                    flush_outbox(i, ctx)
            for box in touched:
                box.clear()

        phase.rounds = rounds
        phase.messages = len(words_log)
        if words_log:
            words_arr = np.asarray(words_log, dtype=np.int64)
            phase.words = int(words_arr.sum())
            phase.max_message_words = int(words_arr.max())
        phase.max_edge_backlog = max_backlog

    # -- per-message engine (tracer path, PR 3 loop) --------------------
    def _phase_permessage(
        self,
        name: str,
        phase: PhaseMetrics,
        programs: list[NodeProgram],
        limit: int,
    ) -> None:
        """One message at a time, in delivery order — the PR 3 loop.

        Kept for tracers, which must observe every hop as it crosses;
        also the most literal rendering of the round structure, which
        makes it the readable reference for the batched paths above.
        Self-contained (fresh per-phase FIFOs): it stores raw messages
        where the batched paths store prebuilt inbox entries, so it
        deliberately does not share the persistent engine state.
        """
        index = self.index
        nodes = self._nodes
        n = len(nodes)
        node_id = index.node_id
        edge_id_maps = index.edge_id_maps
        adj_target = index.adj_target
        edge_src_node = index.delivery_arrays().source_nodes
        strict = self.strict
        max_words = self.max_words_per_message
        tracer = self.tracer
        contexts = self._contexts

        queues: list[Optional[deque[Message]]] = [None] * index.directed_edge_count
        active_edges: list[int] = []
        inboxes: list[list[tuple[NodeId, Message]]] = [[] for _ in range(n)]
        receivers: list[int] = []
        tick_nodes: set[NodeId] = set()

        def flush_outbox(i: int, ctx: NodeContext) -> None:
            outbox = ctx._outbox
            if outbox:
                edge_ids = edge_id_maps[i]
                backlog = phase.max_edge_backlog
                for v, msg in outbox:
                    if strict and msg.words > max_words:
                        check_message_size(msg, max_words)  # raises
                    e = edge_ids[v]
                    queue = queues[e]
                    if queue is None:
                        queue = queues[e] = deque()
                    if not queue:
                        active_edges.append(e)
                    queue.append(msg)
                    if len(queue) > backlog:
                        backlog = len(queue)
                phase.max_edge_backlog = backlog
                outbox.clear()
            if ctx._tick_requested:
                ctx._tick_requested = False
                tick_nodes.add(ctx.node)

        # Round 0: on_start for everyone.
        for i in range(n):
            ctx = contexts[i]
            programs[i].on_start(ctx)
            if ctx._outbox or ctx._tick_requested:
                flush_outbox(i, ctx)

        rounds = 0
        message_count = 0
        word_count = 0
        max_word = 0
        while active_edges or tick_nodes:
            if rounds >= limit:
                raise RoundLimitExceededError(
                    f"phase {name!r} did not reach quiescence within "
                    f"{limit} rounds ({len(active_edges)} busy edges)"
                )
            rounds += 1
            # 1. Delivery: one message per busy directed edge, scanned
            # in activation order over the flat edge-id list.
            still_active: list[int] = []
            for e in active_edges:
                queue = queues[e]
                msg = queue.popleft()
                w = msg.words
                message_count += 1
                word_count += w
                if w > max_word:
                    max_word = w
                dst = adj_target[e]
                if tracer is not None:
                    tracer.record(
                        name, rounds, edge_src_node[e], nodes[dst], msg
                    )
                box = inboxes[dst]
                if not box:
                    receivers.append(dst)
                box.append((edge_src_node[e], msg))
                if queue:
                    still_active.append(e)
            active_edges = still_active
            # 2. Computation for receivers and tick requesters.  The
            # active set is built over *original* node ids, via the
            # canonical set(first-touch) | ticks construction the
            # batched/numpy engines reproduce bit for bit.
            active = set(dict.fromkeys(nodes[i] for i in receivers)) | tick_nodes
            tick_nodes = set()
            for u in active:
                i = node_id[u]
                ctx = contexts[i]
                ctx.round = rounds
                programs[i].on_round(ctx, inboxes[i])
                if ctx._outbox or ctx._tick_requested:
                    flush_outbox(i, ctx)
            for i in receivers:
                inboxes[i].clear()
            receivers.clear()

        phase.rounds = rounds
        phase.messages = message_count
        phase.words = word_count
        phase.max_message_words = max_word

    # ------------------------------------------------------------------
    def charge(self, rounds: int, note: str) -> None:
        """Record an analytic round cost (substituted subroutine)."""
        self.metrics.charge(rounds, note)

    def memory_map(self, key: str) -> dict[NodeId, Any]:
        """``{node: memory[key]}`` over nodes that have ``key`` set."""
        return {u: mem[key] for u, mem in self.memory.items() if key in mem}
