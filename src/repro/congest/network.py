"""The synchronous CONGEST engine.

The engine owns, for every directed edge ``(u, v)``, a FIFO of pending
messages.  A round consists of:

1. **delivery** — the head message (if any) of every directed-edge FIFO
   is removed and placed in the receiver's inbox; at most one message
   crosses each edge per direction per round *by construction*, which is
   exactly the CONGEST bandwidth constraint;
2. **computation** — every node with a non-empty inbox (plus nodes that
   requested a tick) runs ``on_round``; messages it sends are appended to
   the FIFOs and become eligible for delivery from the next round on.

Enqueueing many messages at once is therefore legal and models
*pipelining*: `k` messages to the same neighbour drain over `k` rounds.
Strict mode additionally audits every message's size in words
(:mod:`repro.congest.message`), so an algorithm that tries to stuff a
non-constant amount of data into one message fails loudly.

A phase ends at **quiescence**: no FIFO holds a message and no node
requested a tick.  Phases of a larger algorithm share each node's
persistent ``memory`` dict, modelling local storage across phases (the
phase barrier itself is charged by drivers as O(D) where relevant).
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Hashable
from typing import Any, Optional

from ..errors import CongestError, RoundLimitExceededError
from ..graphs.graph import WeightedGraph
from .message import Message, check_message_size
from .metrics import PhaseMetrics, RunMetrics
from .node import NodeContext, NodeProgram

NodeId = Hashable
ProgramFactory = Callable[[NodeId], NodeProgram]

DEFAULT_MAX_WORDS = 8
DEFAULT_ROUND_LIMIT = 2_000_000


class PhaseResult:
    """Outcome of one phase: metrics plus collected node outputs."""

    def __init__(self, metrics: PhaseMetrics, outputs: dict[NodeId, dict[str, Any]]):
        self.metrics = metrics
        self.outputs = outputs

    def output_map(self, key: str) -> dict[NodeId, Any]:
        """``{node: value}`` for one output key, restricted to nodes that
        produced it."""
        return {u: vals[key] for u, vals in self.outputs.items() if key in vals}


class CongestNetwork:
    """A CONGEST network over a :class:`WeightedGraph`.

    Parameters
    ----------
    graph:
        The communication topology; must be connected for most protocols
        (checked by the algorithms, not the engine).
    max_words_per_message:
        Per-message budget in words (one word models O(log n) bits).
    strict:
        When True (default), oversize messages raise
        :class:`~repro.errors.BandwidthExceededError`.
    """

    def __init__(
        self,
        graph: WeightedGraph,
        max_words_per_message: int = DEFAULT_MAX_WORDS,
        strict: bool = True,
        tracer=None,
    ) -> None:
        self.graph = graph
        self.strict = strict
        self.tracer = tracer
        self.max_words_per_message = max_words_per_message
        self._nodes: list[NodeId] = graph.nodes
        self._neighbors: dict[NodeId, list[NodeId]] = {
            u: graph.neighbors(u) for u in self._nodes
        }
        self._weights: dict[NodeId, dict[NodeId, float]] = {
            u: {v: graph.weight(u, v) for v in self._neighbors[u]}
            for u in self._nodes
        }
        self.memory: dict[NodeId, dict[str, Any]] = {u: {} for u in self._nodes}
        self.metrics = RunMetrics()

    @property
    def nodes(self) -> list[NodeId]:
        return list(self._nodes)

    @property
    def size(self) -> int:
        return len(self._nodes)

    # ------------------------------------------------------------------
    def reset_memory(self) -> None:
        """Clear all persistent node memory (fresh computation)."""
        self.memory = {u: {} for u in self._nodes}

    def run_phase(
        self,
        name: str,
        program_factory: ProgramFactory,
        max_rounds: Optional[int] = None,
    ) -> PhaseResult:
        """Run one phase to quiescence and record its metrics.

        ``program_factory(node)`` builds the per-node program.  Raises
        :class:`RoundLimitExceededError` if quiescence is not reached
        within ``max_rounds`` (default: a large engine-level limit that
        only trips on livelocked protocols).
        """
        limit = max_rounds if max_rounds is not None else DEFAULT_ROUND_LIMIT
        phase = PhaseMetrics(name=name)
        outputs: dict[NodeId, dict[str, Any]] = {u: {} for u in self._nodes}
        contexts: dict[NodeId, NodeContext] = {}
        programs: dict[NodeId, NodeProgram] = {}
        for u in self._nodes:
            ctx = NodeContext(
                node=u,
                neighbors=self._neighbors[u],
                weights=self._weights[u],
                network_size=len(self._nodes),
                memory=self.memory[u],
                outputs=outputs[u],
            )
            contexts[u] = ctx
            programs[u] = program_factory(u)

        fifos: dict[tuple[NodeId, NodeId], deque[Message]] = {}
        tick_set: set[NodeId] = set()

        def flush_outbox(u: NodeId) -> None:
            for v, msg in contexts[u]._drain():
                if self.strict:
                    check_message_size(msg, self.max_words_per_message)
                queue = fifos.get((u, v))
                if queue is None:
                    queue = deque()
                    fifos[(u, v)] = queue
                queue.append(msg)
                if len(queue) > phase.max_edge_backlog:
                    phase.max_edge_backlog = len(queue)
            if contexts[u]._take_tick():
                tick_set.add(u)

        # Round 0: on_start for everyone.
        for u in self._nodes:
            programs[u].on_start(contexts[u])
            flush_outbox(u)

        rounds = 0
        while fifos or tick_set:
            if rounds >= limit:
                raise RoundLimitExceededError(
                    f"phase {name!r} did not reach quiescence within "
                    f"{limit} rounds ({len(fifos)} busy edges)"
                )
            rounds += 1
            # 1. Delivery: one message per directed edge.
            inboxes: dict[NodeId, list[tuple[NodeId, Message]]] = {}
            emptied: list[tuple[NodeId, NodeId]] = []
            for (src, dst), queue in fifos.items():
                msg = queue.popleft()
                phase.merge_message(msg.words)
                if self.tracer is not None:
                    self.tracer.record(name, rounds, src, dst, msg)
                inboxes.setdefault(dst, []).append((src, msg))
                if not queue:
                    emptied.append((src, dst))
            for key in emptied:
                del fifos[key]
            # 2. Computation for receivers and tick requesters.
            active = set(inboxes) | tick_set
            tick_set = set()
            for u in active:
                ctx = contexts[u]
                ctx.round = rounds
                programs[u].on_round(ctx, inboxes.get(u, []))
                flush_outbox(u)

        phase.rounds = rounds
        for u in self._nodes:
            programs[u].on_stop(contexts[u])
            if contexts[u]._outbox:
                raise CongestError(
                    f"node {u!r} attempted to send from on_stop in phase {name!r}"
                )
        self.metrics.add_phase(phase)
        return PhaseResult(phase, outputs)

    # ------------------------------------------------------------------
    def charge(self, rounds: int, note: str) -> None:
        """Record an analytic round cost (substituted subroutine)."""
        self.metrics.charge(rounds, note)

    def memory_map(self, key: str) -> dict[NodeId, Any]:
        """``{node: memory[key]}`` over nodes that have ``key`` set."""
        return {u: mem[key] for u, mem in self.memory.items() if key in mem}
