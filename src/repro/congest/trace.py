"""Execution tracing for the CONGEST engine.

A :class:`MessageTracer` attached to a :class:`~repro.congest.network.
CongestNetwork` records every delivered message as a
:class:`TraceEvent` — (phase, round, src, dst, kind, payload) — with
optional filters so traces of large runs stay manageable.  Intended
uses:

* debugging new node programs (``tracer.render()`` gives a per-round
  transcript);
* teaching/demos — the Figure 1 walkthrough can show the actual
  messages behind each step;
* assertions in tests about *what was sent*, not just final state
  (e.g. "the LCA phase never sends more than |A(v)| chain items").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional


@dataclass(frozen=True)
class TraceEvent:
    """One delivered message."""

    phase: str
    round: int
    src: object
    dst: object
    kind: str
    payload: tuple

    def render(self) -> str:
        body = ", ".join(repr(x) for x in self.payload)
        return f"[{self.phase} r{self.round}] {self.src} -> {self.dst}  {self.kind}({body})"


EventFilter = Callable[[TraceEvent], bool]


class MessageTracer:
    """Collects :class:`TraceEvent` objects delivered by the engine.

    Parameters
    ----------
    event_filter:
        Optional predicate; events failing it are dropped at source.
    max_events:
        Hard cap — tracing silently stops once reached (the count of
        *dropped* events is still tracked).
    """

    def __init__(
        self,
        event_filter: Optional[EventFilter] = None,
        max_events: int = 100_000,
    ) -> None:
        self.events: list[TraceEvent] = []
        self.dropped = 0
        self._filter = event_filter
        self._max_events = max_events

    # -- engine hook -----------------------------------------------------
    def record(self, phase: str, round_number: int, src, dst, message) -> None:
        event = TraceEvent(
            phase=phase,
            round=round_number,
            src=src,
            dst=dst,
            kind=message.kind,
            payload=message.payload,
        )
        if self._filter is not None and not self._filter(event):
            return
        if len(self.events) >= self._max_events:
            self.dropped += 1
            return
        self.events.append(event)

    # -- queries -----------------------------------------------------------
    def __len__(self) -> int:
        return len(self.events)

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self.events if e.kind == kind]

    def between(self, src, dst) -> list[TraceEvent]:
        """Events over the directed edge (src, dst), in delivery order."""
        return [e for e in self.events if e.src == src and e.dst == dst]

    def phases(self) -> list[str]:
        """Distinct phase names, in first-appearance order."""
        seen: list[str] = []
        for e in self.events:
            if e.phase not in seen:
                seen.append(e.phase)
        return seen

    def kind_histogram(self) -> dict[str, int]:
        histogram: dict[str, int] = {}
        for e in self.events:
            histogram[e.kind] = histogram.get(e.kind, 0) + 1
        return histogram

    def render(self, limit: int = 200) -> str:
        """A human-readable transcript (truncated at ``limit`` lines)."""
        lines = [e.render() for e in self.events[:limit]]
        remaining = len(self.events) - limit
        if remaining > 0:
            lines.append(f"... {remaining} more events")
        if self.dropped:
            lines.append(f"... {self.dropped} events dropped at cap")
        return "\n".join(lines)


def node_filter(*nodes) -> EventFilter:
    """Keep only events touching any of ``nodes`` (as src or dst)."""
    wanted = set(nodes)
    return lambda e: e.src in wanted or e.dst in wanted


def kind_filter(*kinds: str) -> EventFilter:
    """Keep only events whose kind is one of ``kinds``."""
    wanted = set(kinds)
    return lambda e: e.kind in wanted
