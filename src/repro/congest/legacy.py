"""The pre-index CONGEST engine loop, preserved verbatim.

PR 3 rewrote :meth:`repro.congest.network.CongestNetwork.run_phase` on
flat arrays indexed by directed-edge id (see that module's docstring).
This module keeps the original dict-based loop — per-edge FIFOs keyed on
``(u, v)`` tuples, a fresh ``inboxes`` dict every round — behind the
same public API, for two purposes:

* the **P1 throughput benchmark** measures the indexed engine against
  this reference on identical workloads (rounds/sec, messages/sec);
* the **equivalence tests** assert that both engines produce identical
  :class:`~repro.congest.metrics.PhaseMetrics` and bit-identical node
  outputs, protocol for protocol — the refactor's correctness argument.

Do not grow features here; this loop is intentionally frozen.  PR 7
formally deprecated the class (construction emits a
:class:`DeprecationWarning`): with three production engines behind
``CongestNetwork(engine=...)`` its only remaining roles are as the
benchmark reference and the equivalence oracle, and it will be dropped
once the roadmap's legacy-retirement item completes.
"""

from __future__ import annotations

import time
import warnings
from collections import deque
from typing import Any, Optional

from ..errors import BandwidthExceededError, CongestError, RoundLimitExceededError
from ..graphs.graph import WeightedGraph
from .message import Message
from .metrics import PhaseMetrics
from .network import (
    DEFAULT_MAX_WORDS,
    CongestNetwork,
    NodeId,
    PhaseResult,
    ProgramFactory,
)
from .node import NodeContext, NodeProgram


def _seed_payload_words(value: Any) -> int:
    """The seed's recursive word count, preserved verbatim.

    PR 3 replaced this with a type-dispatch fast path plus a size cached
    on the frozen message; the legacy loop keeps the original
    per-access recount so the benchmark reference carries the seed's
    true per-hop cost.
    """
    if value is None:
        return 0
    if isinstance(value, (int, float, str, bool)):
        return 1
    if isinstance(value, (tuple, list, frozenset)):
        return sum(_seed_payload_words(item) for item in value)
    raise BandwidthExceededError(
        f"payload element of type {type(value).__name__} has no defined "
        f"CONGEST size; send scalars or tuples of scalars"
    )


class LegacyCongestNetwork(CongestNetwork):
    """Drop-in :class:`CongestNetwork` running the original dict loop."""

    def __init__(
        self,
        graph: WeightedGraph,
        max_words_per_message: int = DEFAULT_MAX_WORDS,
        strict: bool = True,
        tracer=None,
    ) -> None:
        warnings.warn(
            "LegacyCongestNetwork is deprecated; it remains only as the "
            "benchmark reference and equivalence oracle. Use "
            "CongestNetwork(engine=...) instead.",
            DeprecationWarning,
            stacklevel=2,
        )
        super().__init__(
            graph,
            max_words_per_message=max_words_per_message,
            strict=strict,
            tracer=tracer,
        )
        # The original engine rebuilt per-node neighbour lists and
        # weight dicts from the adjacency map at construction time.
        self._dict_neighbors: dict[NodeId, list[NodeId]] = {
            u: graph.neighbors(u) for u in self._nodes
        }
        self._dict_weights: dict[NodeId, dict[NodeId, float]] = {
            u: {v: graph.weight(u, v) for v in self._dict_neighbors[u]}
            for u in self._nodes
        }

    @property
    def active_engine(self) -> str:
        """Always the frozen reference loop."""
        return "legacy"

    def run_phase(
        self,
        name: str,
        program_factory: ProgramFactory,
        max_rounds: Optional[int] = None,
    ) -> PhaseResult:
        """The original tuple-keyed FIFO loop (see module docstring)."""
        started = time.perf_counter()
        limit = max_rounds if max_rounds is not None else 2_000_000
        phase = PhaseMetrics(name=name)
        outputs: dict[NodeId, dict[str, Any]] = {u: {} for u in self._nodes}
        contexts: dict[NodeId, NodeContext] = {}
        programs: dict[NodeId, NodeProgram] = {}
        for u in self._nodes:
            ctx = NodeContext(
                node=u,
                neighbors=self._dict_neighbors[u],
                weights=self._dict_weights[u],
                network_size=len(self._nodes),
                memory=self.memory[u],
                outputs=outputs[u],
            )
            contexts[u] = ctx
            programs[u] = program_factory(u)

        fifos: dict[tuple[NodeId, NodeId], deque[Message]] = {}
        tick_set: set[NodeId] = set()

        # The seed computed a message's word size on every access (the
        # `Message.words` property recounted the payload); PR 3 made it
        # a construction-time constant.  The reference loop recounts
        # explicitly to preserve the per-hop cost it is benchmarked
        # against.
        def flush_outbox(u: NodeId) -> None:
            for v, msg in contexts[u]._drain():
                if self.strict:
                    words = _seed_payload_words(msg.payload)
                    if words > self.max_words_per_message:
                        raise BandwidthExceededError(
                            f"message kind={msg.kind!r} carries {words} "
                            f"words, exceeding the per-message budget of "
                            f"{self.max_words_per_message} words "
                            f"(one word models O(log n) bits)"
                        )
                queue = fifos.get((u, v))
                if queue is None:
                    queue = deque()
                    fifos[(u, v)] = queue
                queue.append(msg)
                if len(queue) > phase.max_edge_backlog:
                    phase.max_edge_backlog = len(queue)
            if contexts[u]._take_tick():
                tick_set.add(u)

        # Round 0: on_start for everyone.
        for u in self._nodes:
            programs[u].on_start(contexts[u])
            flush_outbox(u)

        rounds = 0
        while fifos or tick_set:
            if rounds >= limit:
                raise RoundLimitExceededError(
                    f"phase {name!r} did not reach quiescence within "
                    f"{limit} rounds ({len(fifos)} busy edges)"
                )
            rounds += 1
            # 1. Delivery: one message per directed edge.
            inboxes: dict[NodeId, list[tuple[NodeId, Message]]] = {}
            emptied: list[tuple[NodeId, NodeId]] = []
            for (src, dst), queue in fifos.items():
                msg = queue.popleft()
                phase.merge_message(_seed_payload_words(msg.payload))
                if self.tracer is not None:
                    self.tracer.record(name, rounds, src, dst, msg)
                inboxes.setdefault(dst, []).append((src, msg))
                if not queue:
                    emptied.append((src, dst))
            for key in emptied:
                del fifos[key]
            # 2. Computation for receivers and tick requesters.
            active = set(inboxes) | tick_set
            tick_set = set()
            for u in active:
                ctx = contexts[u]
                ctx.round = rounds
                programs[u].on_round(ctx, inboxes.get(u, []))
                flush_outbox(u)

        phase.rounds = rounds
        for u in self._nodes:
            programs[u].on_stop(contexts[u])
            if contexts[u]._outbox:
                raise CongestError(
                    f"node {u!r} attempted to send from on_stop in phase {name!r}"
                )
        phase.wall_time = time.perf_counter() - started
        self.metrics.add_phase(phase)
        return PhaseResult(phase, outputs)


__all__ = ["LegacyCongestNetwork"]
