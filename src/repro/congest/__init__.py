"""CONGEST-model simulator (system S3 of DESIGN.md).

Synchronous rounds, one O(log n)-bit message per edge per direction per
round (enforced by construction via per-edge FIFOs plus a per-message
word audit), persistent node memory across phases, and round/message
metrics distinguishing *measured* from *charged* costs.
"""

from .message import Message, check_message_size, payload_words
from .metrics import PhaseMetrics, RunMetrics
from .network import (
    CongestNetwork,
    PhaseResult,
    DEFAULT_MAX_WORDS,
    ENGINE_CHOICES,
    ENGINE_ENV_VAR,
    numpy_available,
    resolve_engine,
)
from .node import Inbox, NodeContext, NodeProgram, single_message
from .trace import MessageTracer, TraceEvent, kind_filter, node_filter

__all__ = [
    "Message",
    "check_message_size",
    "payload_words",
    "PhaseMetrics",
    "RunMetrics",
    "CongestNetwork",
    "PhaseResult",
    "DEFAULT_MAX_WORDS",
    "ENGINE_CHOICES",
    "ENGINE_ENV_VAR",
    "numpy_available",
    "resolve_engine",
    "Inbox",
    "NodeContext",
    "NodeProgram",
    "single_message",
    "MessageTracer",
    "TraceEvent",
    "kind_filter",
    "node_filter",
]
