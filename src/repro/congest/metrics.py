"""Round and message accounting for CONGEST runs.

Two kinds of cost appear in the library:

* **measured** rounds — counted by actually running a phase on the
  simulator;
* **charged** rounds — analytic costs of substituted subroutines (e.g.
  the published Kutten–Peleg MST bound), recorded separately so reports
  can always distinguish the two (see DESIGN.md §5).
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass
class PhaseMetrics:
    """Costs of a single phase run to quiescence.

    ``wall_time`` is the real-clock duration of the ``run_phase`` call in
    seconds.  It is excluded from equality (``compare=False``): two runs
    are *the same computation* when rounds/messages/words agree, however
    long the simulator took — the equivalence suite compares
    ``PhaseMetrics`` objects directly and must not depend on timing.
    """

    name: str
    rounds: int = 0
    messages: int = 0
    words: int = 0
    max_message_words: int = 0
    max_edge_backlog: int = 0
    wall_time: float = field(default=0.0, compare=False)

    def merge_message(self, words: int) -> None:
        self.messages += 1
        self.words += words
        if words > self.max_message_words:
            self.max_message_words = words


@dataclass
class RunMetrics:
    """Accumulated costs of a multi-phase computation."""

    phases: list[PhaseMetrics] = field(default_factory=list)
    charged_rounds: int = 0
    charged_notes: list[str] = field(default_factory=list)

    @property
    def measured_rounds(self) -> int:
        return sum(p.rounds for p in self.phases)

    @property
    def total_rounds(self) -> int:
        """Measured plus charged rounds — the figure comparable to the
        paper's bound."""
        return self.measured_rounds + self.charged_rounds

    @property
    def total_messages(self) -> int:
        return sum(p.messages for p in self.phases)

    @property
    def total_words(self) -> int:
        return sum(p.words for p in self.phases)

    @property
    def max_message_words(self) -> int:
        return max((p.max_message_words for p in self.phases), default=0)

    @property
    def max_edge_backlog(self) -> int:
        return max((p.max_edge_backlog for p in self.phases), default=0)

    @property
    def wall_time(self) -> float:
        """Total simulator wall-clock seconds across measured phases.

        An engine-speed observable: identical protocols produce identical
        rounds/messages on every engine, so a jump here (at constant
        rounds) is a delivery-engine regression — visible in
        ``summary()`` and ``extras["congest"]`` without rerunning the P1
        benchmark.
        """
        return sum(p.wall_time for p in self.phases)

    def add_phase(self, phase: PhaseMetrics) -> None:
        self.phases.append(phase)

    def charge(self, rounds: int, note: str) -> None:
        """Record an analytic (non-simulated) round cost."""
        if rounds < 0:
            raise ValueError("charged rounds must be non-negative")
        self.charged_rounds += rounds
        self.charged_notes.append(f"{note}: {rounds} rounds (charged)")

    def extend(self, other: "RunMetrics") -> None:
        """Fold another run's costs into this one."""
        self.phases.extend(other.phases)
        self.charged_rounds += other.charged_rounds
        self.charged_notes.extend(other.charged_notes)

    def summary(self) -> dict:
        """Compact dictionary used by benchmarks and reports."""
        return {
            "measured_rounds": self.measured_rounds,
            "charged_rounds": self.charged_rounds,
            "total_rounds": self.total_rounds,
            "messages": self.total_messages,
            "words": self.total_words,
            "max_message_words": self.max_message_words,
            "wall_time": round(self.wall_time, 6),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        s = self.summary()
        return (
            f"RunMetrics(rounds={s['total_rounds']} "
            f"[{s['measured_rounds']} measured + {s['charged_rounds']} charged], "
            f"messages={s['messages']})"
        )
