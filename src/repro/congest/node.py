"""Per-node programming interface for the CONGEST simulator.

A distributed algorithm is written as a :class:`NodeProgram` subclass.
One instance is created per node per phase; the engine calls
:meth:`NodeProgram.on_start` once and then :meth:`NodeProgram.on_round`
on every round in which the node has incoming messages (or has requested
a tick).  All interaction with the world goes through the
:class:`NodeContext`, which exposes exactly the knowledge a CONGEST node
is allowed to have initially: its own identifier, its neighbours, the
weights of incident edges, and (by the standard convention) ``n``.
"""

from __future__ import annotations

from collections.abc import Callable, Hashable, Sequence
from typing import Any, Optional

from .message import Message

NodeId = Hashable
Inbox = list[tuple[NodeId, Message]]


class NodeContext:
    """Capability handle passed to node programs by the engine.

    The engine owns the actual queues; the context only records intents.
    ``memory`` persists across phases of a pipeline (it models the node's
    local storage), while program instances are per-phase.
    """

    __slots__ = (
        "node",
        "neighbors",
        "_weights",
        "round",
        "network_size",
        "memory",
        "_outbox",
        "_outputs",
        "_tick_requested",
    )

    def __init__(
        self,
        node: NodeId,
        neighbors: "Sequence[NodeId]",
        weights: dict[NodeId, float],
        network_size: int,
        memory: dict[str, Any],
        outputs: dict[str, Any],
    ) -> None:
        self.node = node
        self.neighbors = neighbors
        self._weights = weights
        self.round = 0
        self.network_size = network_size
        self.memory = memory
        self._outbox: list[tuple[NodeId, Message]] = []
        self._outputs = outputs
        self._tick_requested = False

    # -- knowledge ------------------------------------------------------
    def edge_weight(self, neighbor: NodeId) -> float:
        """Weight of the incident edge to ``neighbor`` (initial knowledge)."""
        return self._weights[neighbor]

    @property
    def degree(self) -> int:
        return len(self.neighbors)

    def weighted_degree(self) -> float:
        """δ(node): total weight of incident edges."""
        return sum(self._weights.values())

    # -- actions --------------------------------------------------------
    def send(self, neighbor: NodeId, kind: str, *payload: Any) -> None:
        """Enqueue a message to ``neighbor``.

        Queued messages drain at one per round per (edge, direction) —
        the engine's FIFO implements CONGEST pipelining, so enqueueing k
        messages at once is allowed and they arrive over k rounds.
        """
        if neighbor not in self._weights:
            raise KeyError(
                f"node {self.node!r} has no edge to {neighbor!r}"
            )
        self._outbox.append((neighbor, Message(kind, payload)))

    def multicast(self, neighbors: "Sequence[NodeId]", kind: str, *payload: Any) -> None:
        """Send one identical message to several neighbours.

        Builds a single frozen :class:`Message` shared by every target —
        semantically identical to calling :meth:`send` per neighbour,
        but the payload is constructed (and its word size audited) once
        instead of once per copy.  Flood and downcast primitives, which
        forward the same item to every child, use this.
        """
        if not neighbors:  # leaves multicast to no one constantly
            return
        weights = self._weights
        outbox = self._outbox
        message = Message(kind, payload)
        for v in neighbors:
            if v not in weights:
                raise KeyError(f"node {self.node!r} has no edge to {v!r}")
            outbox.append((v, message))

    def broadcast(self, kind: str, *payload: Any) -> None:
        """Send the same message to every neighbour."""
        self.multicast(self.neighbors, kind, *payload)

    def forward(self, neighbors: "Sequence[NodeId]", message: Message) -> None:
        """Relay a received message onward, unchanged.

        Messages are frozen, so relays (downcasts, floods) can enqueue
        the received object itself instead of re-wrapping an identical
        kind/payload at every hop — same wire semantics, one message
        object (and one size audit) per item end to end.
        """
        if not neighbors:
            return
        weights = self._weights
        outbox = self._outbox
        for v in neighbors:
            if v not in weights:
                raise KeyError(f"node {self.node!r} has no edge to {v!r}")
            outbox.append((v, message))

    def relay(self, neighbors: "Sequence[NodeId]") -> Callable[[Message], None]:
        """A prevalidated bulk-forwarder over a fixed neighbour set.

        Validates ``neighbors`` once and returns ``relay(message)``,
        semantically identical to :meth:`forward` with the same targets
        but without re-validating per call.  Streaming relays (downcast,
        flood) call the forwarder once per hop on the hot path, so the
        per-call membership checks were a measurable share of per-hop
        cost.  The forwarder is bound to this context's outbox and valid
        for the phase (contexts are per-phase rebound by the engine).
        """
        targets = tuple(neighbors)
        weights = self._weights
        for v in targets:
            if v not in weights:
                raise KeyError(f"node {self.node!r} has no edge to {v!r}")
        outbox_append = self._outbox.append
        if len(targets) == 1:
            only = targets[0]

            def _relay_one(message: Message) -> None:
                outbox_append((only, message))

            return _relay_one

        def _relay(message: Message) -> None:
            for v in targets:
                outbox_append((v, message))

        return _relay

    def output(self, key: str, value: Any) -> None:
        """Record a named result of this node (collected by the engine)."""
        self._outputs[key] = value

    def request_tick(self) -> None:
        """Ask to be scheduled next round even with an empty inbox.

        Programs that are purely message-driven never need this; it
        exists for round-counting protocols (e.g. tests of the engine).
        """
        self._tick_requested = True

    # -- engine internal -------------------------------------------------
    def _drain(self) -> list[tuple[NodeId, Message]]:
        # Copy-and-clear rather than rebind: bound forwarders from
        # :meth:`relay` hold a reference to the outbox list, which must
        # stay the live one across drains.
        out = list(self._outbox)
        self._outbox.clear()
        return out

    def _take_tick(self) -> bool:
        t, self._tick_requested = self._tick_requested, False
        return t


class NodeProgram:
    """Base class for per-node CONGEST programs.

    Subclasses override :meth:`on_start` (round 0 initialisation; may
    send) and :meth:`on_round` (invoked whenever messages arrive, with
    the inbox of ``(sender, message)`` pairs delivered this round).
    Instance attributes are the node's phase-local state.
    """

    def on_start(self, ctx: NodeContext) -> None:
        """One-time initialisation before the first round."""

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        """Handle this round's inbox; send via ``ctx.send``.

        The inbox list is engine-owned and reused across rounds: read
        it (or keep the ``(sender, message)`` entries) during the call,
        but do not store a reference to the list itself.
        """

    def on_stop(self, ctx: NodeContext) -> None:
        """Called once when the phase reaches quiescence (finalise
        outputs)."""


def single_message(inbox: Inbox, kind: str) -> Optional[tuple[NodeId, Message]]:
    """Convenience: the unique message of ``kind`` in the inbox, or None.

    Raises :class:`ValueError` when several messages of that kind arrived
    — a protocol bug worth failing loudly on.
    """
    matches = [(src, msg) for src, msg in inbox if msg.kind == kind]
    if not matches:
        return None
    if len(matches) > 1:
        raise ValueError(f"expected at most one {kind!r} message, got {len(matches)}")
    return matches[0]
