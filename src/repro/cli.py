"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``exact``      exact minimum cut via any registered exact solver
               (default: the paper's Thorup packing + 1-respecting
               cuts; optional congest mode with round accounting).
``approx``     approximate minimum cut via any registered approx solver
               (default: the paper's (1+ε) Karger-sampling algorithm).
``rounds``     measure Theorem 2.1's distributed rounds over a size
               sweep of one family and fit the scaling exponent.
``compare``    run every applicable registered solver on one instance
               and print the agreement table.
``sweep``      solve a generated batch of instances through
               ``solve_batch`` (execution backend + result cache knobs);
               with ``--stream OPSFILE`` it instead drives one evolving
               instance through a :class:`repro.dynamic.DynamicSession`,
               replaying a mutation ops file with certificate-gated
               re-solves.
``solvers``    list the solver registry with capability metadata.
``bounds``     certified λ interval from edge-disjoint tree packings.
``serve``      run the JSON-over-HTTP service (:mod:`repro.service`)
               sharing one result cache across connections (optionally
               warm-started from merged cache files).
``client``     talk to a running service (health, solvers, solve,
               batch round trips) — the CI smoke job's tool.
``cache``      result-cache tooling: ``merge`` worker cache files or
               store directories into one warm-start target, ``stats``
               a cache's contents, and — for segment stores
               (:mod:`repro.store`) — ``compact`` under a retention
               policy, ``gc`` dead records, ``segments`` breakdown.
``calibrate``  measure registered solvers over a generator grid, fit
               their cost models against wall time, and write a
               versioned ``CostProfile`` artifact for
               ``--cost-profile`` / ``$REPRO_COST_PROFILE``.
``config``     show the effective configuration (defaults + config
               file + environment) as JSON — the debugging tool for
               the precedence chain.

All algorithm dispatch goes through :mod:`repro.api` — the commands
iterate the solver registry instead of hard-coding algorithm lists, so
a newly registered solver is immediately selectable with ``--solver``
and shows up in ``compare`` and ``solvers``.  ``compare`` and ``sweep``
additionally expose the execution engine (:mod:`repro.exec`): pick a
backend with ``--backend serial|thread|process`` (default from
``$REPRO_BACKEND``) and enable result caching with ``--cache`` /
``--cache-file``.

Configuration follows one precedence rule everywhere
(:mod:`repro.config`): **CLI flag > environment > config file >
default**.  ``repro --config repro.toml <command>`` (or
``$REPRO_CONFIG``) loads ``[engine]``/``[serve]``/``[remote]``/
``[cache]`` sections; any flag you pass on top still wins.

Examples
--------
::

    python -m repro exact --family gnp --n 128 --mode congest
    python -m repro exact --family grid --n 64 --solver stoer_wagner
    python -m repro approx --family complete --n 64 --epsilon 0.5 --mode congest
    python -m repro rounds --family grid --sizes 64,144,324
    python -m repro compare --file mygraph.edges --backend thread
    python -m repro sweep --family gnp --n 64 --count 16 --backend process
    python -m repro sweep --family grid --n 49 --count 8 --cache --repeat 2
    python -m repro sweep --stream ops.txt --family grid --n 49 --cache
    python -m repro solvers --json
    python -m repro serve --port 8137 --cache-file service_cache.json
    python -m repro client solve --url http://127.0.0.1:8137 --family gnp --n 48
    python -m repro cache merge --out warm.json w1_cache.json w2_cache.json
    python -m repro cache merge --out merged_store w1_store w2_store
    python -m repro cache compact merged_store --max-entries 5000 \\
        --export warm_cache.json
    python -m repro serve --port 8137 --warm-start warm.json
    python -m repro serve --port 8101 --register http://127.0.0.1:8100
    python -m repro --config repro.toml sweep --family gnp --n 64 \\
        --count 16 --backend remote
    python -m repro --config repro.toml config show
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import math
import sys
import time
from pathlib import Path
from typing import Optional

from .analysis import fit_power_law, format_cut_results, format_table
from .api import CutResult, Engine, default_registry, solve
from .congest import numpy_available, resolve_engine
from .core import one_respecting_min_cut_congest
from .errors import ReproError
from .exec import (
    BACKENDS,
    CostProfile,
    Executor,
    ResultCache,
    load_cache_file,
    resolve_backend,
    resolve_cost_profile,
    run_calibration,
)
from .exec.cache import CACHE_SCHEMA_VERSION
from .exec.calibrate import PROFILE_SCHEMA_VERSION, REPRO_COST_PROFILE_ENV
from .graphs import (
    WeightedGraph,
    build_family,
    diameter,
    random_spanning_tree,
    read_edge_list,
    FAMILY_BUILDERS,
)


def _load_graph(args: argparse.Namespace) -> WeightedGraph:
    if args.file:
        graph = read_edge_list(args.file)
    else:
        graph = build_family(args.family, args.n, seed=args.seed)
    graph.require_connected()
    return graph


def _add_instance_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--family",
        choices=sorted(FAMILY_BUILDERS),
        default="gnp",
        help="generated graph family (ignored with --file)",
    )
    parser.add_argument("--n", type=int, default=64, help="approximate size")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument(
        "--file", default=None, help="edge-list file (overrides --family)"
    )


def _add_solver_argument(parser: argparse.ArgumentParser, default: str) -> None:
    parser.add_argument(
        "--solver",
        choices=sorted(default_registry().names()),
        default=default,
        help=f"registered solver to run (default: {default})",
    )


def _add_execution_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=sorted(BACKENDS),
        default=None,
        help="execution backend (default: $REPRO_BACKEND or serial)",
    )
    parser.add_argument(
        "--cache",
        action="store_true",
        help="enable the in-memory result cache for this run",
    )
    parser.add_argument(
        "--cache-file",
        default=None,
        metavar="PATH",
        help="persistent result cache: a *.json file or a segment-store "
             "directory (implies --cache)",
    )
    parser.add_argument(
        "--cost-profile",
        default=None,
        metavar="PATH",
        help="calibrated CostProfile (see `repro calibrate`) for "
             f"cost-aware shard/chunk packing (default: ${REPRO_COST_PROFILE_ENV})",
    )


def _build_engine(args: argparse.Namespace) -> Engine:
    """One :class:`Engine` from the precedence chain.

    :func:`repro.config.load_config` supplies the file + environment
    layers (``--config`` / ``$REPRO_CONFIG``, ``$REPRO_BACKEND``,
    ``$REPRO_COST_PROFILE``); the execution flags are overlaid on top,
    so a flag the user typed always beats the file and the env.  With
    ``backend = "remote"`` and a ``[remote]`` section naming workers or
    a manager, the engine comes back with a ready
    :class:`~repro.exec.remote.RemoteExecutor` attached.
    """
    from .config import load_config

    config = load_config(getattr(args, "config", None)).merged(
        engine={
            "backend": args.backend,
            "cost_profile": args.cost_profile,
            "cache": args.cache_file or (True if args.cache else None),
        }
    )
    engine = Engine.from_config(config)
    if not isinstance(engine.backend, Executor):
        engine.backend = resolve_backend(engine.backend)
    return engine


def _print_cache_stats(cache: Optional[ResultCache]) -> None:
    if cache is not None:
        stats = cache.stats()
        print(
            f"cache             : {stats['hits']} hit(s), "
            f"{stats['misses']} miss(es), {stats['memory_entries']} in memory, "
            f"{stats['disk_entries']} on disk"
        )


def _print_metrics(result: CutResult) -> None:
    if result.metrics is not None:
        summary = result.metrics.summary()
        print(
            f"rounds            : {summary['total_rounds']} "
            f"({summary['measured_rounds']} measured + "
            f"{summary['charged_rounds']} charged), "
            f"{summary['messages']} messages"
        )
        print(
            f"congest engine    : {resolve_engine()!r}, "
            f"{summary['wall_time']:.3f}s in run_phase"
        )


def _cmd_exact(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    options = {}
    if args.trees is not None:
        options["tree_count"] = args.trees
    result = solve(
        graph, solver=args.solver, mode=args.mode, seed=args.seed, **options
    )
    print(f"minimum cut value : {result.value:g}")
    print(f"witness side size : {len(result.side)} of {graph.number_of_nodes}")
    if "trees_used" in result.extras:
        print(
            f"packing trees used: {result.extras['trees_used']} "
            f"(winner: #{result.extras['tree_index']})"
        )
    _print_metrics(result)
    return 0


def _cmd_approx(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    result = solve(
        graph,
        solver=args.solver,
        epsilon=args.epsilon,
        mode=args.mode,
        seed=args.seed,
    )
    if "used_sampling" in result.extras:
        path = "sampling" if result.extras["used_sampling"] else "exact (small lambda)"
        detail = f"[eps={args.epsilon}, via {path}]"
    else:
        detail = f"[eps={args.epsilon}]"
    print(f"({result.guarantee}) cut value : {result.value:g}   {detail}")
    print(f"witness side size : {len(result.side)} of {graph.number_of_nodes}")
    if result.extras.get("used_sampling"):
        print(
            f"sampling rate p   : {result.extras['probability']:.4f}  "
            f"(skeleton min cut {result.extras['skeleton_value']:g})"
        )
    _print_metrics(result)
    return 0


def _cmd_rounds(args: argparse.Namespace) -> int:
    sizes = [int(s) for s in args.sizes.split(",")]
    rows = []
    xs, ys = [], []
    for n in sizes:
        graph = build_family(args.family, n, seed=args.seed)
        tree = random_spanning_tree(graph, seed=args.seed)
        outcome = one_respecting_min_cut_congest(graph, tree)
        d = diameter(graph)
        actual = graph.number_of_nodes
        measured = outcome.metrics.measured_rounds
        xs.append(math.sqrt(actual) + d)
        ys.append(measured)
        rows.append(
            [actual, d, measured, outcome.metrics.charged_rounds,
             round(measured / (math.sqrt(actual) + d), 2)]
        )
    print(
        format_table(
            ["n", "D", "measured", "charged", "measured/(sqrt(n)+D)"],
            rows,
            title=f"Theorem 2.1 rounds — family '{args.family}'",
        )
    )
    if len(sizes) >= 2:
        fit = fit_power_law(xs, ys)
        print(
            f"\nfit: rounds ~ (sqrt(n)+D)^{fit.exponent:.2f} "
            f"(R^2={fit.r_squared:.3f})"
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    # One session object owns backend + cache for the whole compare
    # fan-out; `Engine.compare` guarantees the ground-truth row.
    engine = _build_engine(args)
    results = engine.compare(
        graph,
        epsilon=args.epsilon,
        seed=args.seed,
        names=args.solver or None,
        include_heavy=args.heavy,
    )
    if args.solver:
        skipped = sorted(set(args.solver) - {r.solver for r in results})
        if skipped:
            print(
                f"note: skipped (not applicable to this instance): "
                f"{', '.join(skipped)}",
                file=sys.stderr,
            )
    truth = results[0]  # compare() puts the ground-truth solver first
    print(
        format_cut_results(
            results,
            truth=truth.value,
            registry=engine.registry,
            title=f"n={graph.number_of_nodes}, m={graph.number_of_edges}",
        )
    )
    _print_cache_stats(engine.cache)
    return 0


def _cmd_sweep_stream(args: argparse.Namespace) -> int:
    from .dynamic import parse_stream

    graph = build_family(args.family, args.n, seed=args.seed)
    graph.require_connected()
    engine = _build_engine(args)
    session = engine.dynamic_session(
        graph,
        solver=args.solver,
        epsilon=args.epsilon,
        seed=args.seed,
        patch_budget=args.patch_budget,
        copy=False,
        validate=args.validate,
    )
    with open(args.stream) as handle:
        events = list(parse_stream(handle))

    rows: list[list] = []

    def record_solve(lineno: int) -> None:
        result = session.solve()
        certificate = result.extras.get("certificate")
        if certificate is not None:
            note = ",".join(dict.fromkeys(certificate["kinds"])) or "no-change"
        else:
            note = f"solver:{result.solver}"
        info = result.extras.get("cache")
        cache_note = "-" if info is None else ("hit" if info["hit"] else "miss")
        rows.append(
            [lineno, "solve", session.graph.number_of_nodes,
             session.graph.number_of_edges,
             session.graph.content_hash()[:12], "-",
             f"{result.value:g}", note, cache_note]
        )

    since_solve = 0
    started = time.perf_counter()
    for lineno, directive, op in events:
        if directive == "solve":
            record_solve(lineno)
            since_solve = 0
            continue
        if directive == "undo":
            ack = session.undo()
            action = f"undo {ack['op']['op']}"
        else:
            ack = session.apply(op)
            action = ack["applied"]
        rows.append(
            [lineno, action, ack["n"], ack["m"], ack["graph_hash"][:12],
             ack["index"], "-", "-", "-"]
        )
        if directive == "op":
            since_solve += 1
            if args.solve_every and since_solve >= args.solve_every:
                record_solve(lineno)
                since_solve = 0
    elapsed = time.perf_counter() - started

    stats = session.stats()
    print(
        format_table(
            ["line", "action", "n", "m", "hash", "index", "cut value",
             "certificate", "cache"],
            rows,
            title=(
                f"stream — {args.stream} over family '{args.family}' "
                f"(n={args.n}, seed={args.seed})"
            ),
        )
    )
    mutations = stats["ops"] + stats["undos"]
    rate = mutations / elapsed if elapsed > 0 else float("inf")
    print(
        f"\nstream            : {stats['ops']} op(s), {stats['undos']} "
        f"undo(s), {stats['solves']} solve(s) in {elapsed:.3f}s "
        f"({rate:.1f} mutations/sec)"
    )
    print(
        f"solves            : {stats['certified']} certified skip(s), "
        f"{stats['solver_runs']} solver run(s), "
        f"{stats['cache_hits']} cache hit(s)"
    )
    index_stats = stats["index"]
    print(
        f"index maintenance : {index_stats['patched']} patched, "
        f"{index_stats['rebuilt']} rebuilt, {index_stats['noops']} noop(s)"
    )
    _print_cache_stats(engine.cache)
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    if args.stream:
        return _cmd_sweep_stream(args)
    graphs = [
        build_family(args.family, args.n, seed=args.seed + i)
        for i in range(args.count)
    ]
    engine = _build_engine(args)
    backend = engine.backend
    results: list[CutResult] = []
    for _ in range(max(1, args.repeat)):
        results = engine.solve_batch(
            graphs,
            args.solver,
            epsilon=args.epsilon,
            seed=args.seed,
            budget=args.budget,
        )
    rows = []
    for index, (graph, result) in enumerate(zip(graphs, results)):
        note = "-"
        info = result.extras.get("cache")
        if info is not None:
            note = "hit" if info["hit"] else "miss"
        rows.append(
            [
                index,
                graph.number_of_nodes,
                graph.number_of_edges,
                result.solver,
                result.value,
                f"{result.wall_time:.4f}",
                note,
            ]
        )
    print(
        format_table(
            ["#", "n", "m", "solver", "cut value", "time (s)", "cache"],
            rows,
            title=(
                f"sweep — family '{args.family}', {args.count} instance(s), "
                f"backend {backend.name}, congest engine '{resolve_engine()}'"
            ),
        )
    )
    plan = getattr(backend, "last_plan", None)
    if plan:
        line = (
            f"pack plan         : {plan.get('plan', 'cost')} — "
            f"{plan['tasks']} task(s) in {plan['bins']} bin(s), "
            f"predicted makespan {plan['makespan']:g} "
            f"(balance {plan['balance']:g})"
        )
        if plan.get("actual_makespan") is not None:
            line += f", actual {plan['actual_makespan']:g}s"
        if plan.get("stolen"):
            line += (
                f"; streamed {plan.get('chunks', 0)} chunk(s), "
                f"{plan['stolen']} re-packed"
            )
        print(line)
    _print_cache_stats(engine.cache)
    return 0


def _cmd_solvers(args: argparse.Namespace) -> int:
    registry = default_registry()
    profile = (
        CostProfile.load(args.profile)
        if getattr(args, "profile", None)
        else resolve_cost_profile(None)
    )

    def _fitted_seconds(spec):
        if profile is None:
            return None
        if spec.max_nodes is not None and spec.max_nodes < 100:
            return None
        return profile.predict_seconds(spec, 100, 300)

    if args.json:
        solvers = [
            {
                "name": spec.name,
                "kind": spec.kind,
                "guarantee": spec.guarantee,
                "congest": spec.supports_congest,
                "randomized": spec.randomized,
                "heavy": spec.heavy,
                "max_nodes": spec.max_nodes,
                "cost_at_100_300": (
                    int(spec.cost_model(100, 300))
                    if spec.cost_model
                    and (spec.max_nodes is None or spec.max_nodes >= 100)
                    else None
                ),
                "summary": spec.summary,
            }
            for spec in registry
        ]
        if profile is not None:
            for spec, entry in zip(registry, solvers):
                entry["fitted_seconds_at_100_300"] = _fitted_seconds(spec)
                entry["calibration"] = profile.status(spec)
        payload = {
            # Run metadata: which delivery engine CONGEST-mode solves in
            # this environment would use (resolution honours
            # $REPRO_CONGEST_ENGINE and numpy availability).
            "congest_engine": resolve_engine(),
            "numpy_available": numpy_available(),
            "solvers": solvers,
        }
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    yn = {True: "yes", False: "-"}
    rows = []
    for spec in registry:
        row = [
            spec.name,
            spec.kind,
            spec.guarantee,
            yn[spec.supports_congest],
            yn[spec.randomized],
            spec.max_nodes if spec.max_nodes is not None else "-",
            # Expected-cost model sampled at a reference instance — the
            # relative ordering `solve(..., budget=...)` trades on.
            # Solvers capped below the reference size show "-": their
            # cost there is not a number anyone can act on.
            int(spec.cost_model(100, 300))
            if spec.cost_model and (spec.max_nodes is None or spec.max_nodes >= 100)
            else "-",
            spec.summary,
        ]
        if profile is not None:
            fitted = _fitted_seconds(spec)
            # Fitted wall seconds at the same reference instance, with
            # the calibration status (a stale flag means the registered
            # hand model changed since `repro calibrate` last ran).
            row.insert(7, f"{fitted:.2e}" if fitted is not None else "-")
            row.insert(8, profile.status(spec))
        rows.append(row)
    headers = [
        "name", "kind", "guarantee", "congest", "random", "max n",
        "cost@(100,300)", "summary",
    ]
    if profile is not None:
        headers[7:7] = ["fitted s@(100,300)", "calibration"]
    print(
        format_table(
            headers,
            rows,
            title=f"{len(registry)} registered solvers (use with --solver NAME)",
        )
    )
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    from .config import load_config
    from .service import Heartbeat, ServiceConfig, create_server

    config = load_config(getattr(args, "config", None)).merged(
        serve={
            "host": args.host,
            "port": args.port,
            "server": args.server,
            "pool_workers": args.pool_workers,
            "queue_depth": args.queue_depth,
            "retry_after": args.retry_after,
            "delay": args.delay,
            "max_nodes": args.max_nodes,
            "max_batch": args.max_batch,
            "backend": args.backend,
            "cost_profile": args.cost_profile,
            "cache_file": args.cache_file,
            "warm_start": args.warm_start,
            "access_log": args.access_log,
            "register": args.register,
            "advertise": args.advertise,
            "heartbeat": args.heartbeat,
            "worker_ttl": args.worker_ttl,
        }
    )
    sc = config.serve
    cache = ResultCache(path=sc.cache_file) if sc.cache_file else ResultCache()
    depth = sc.queue_depth
    if depth is not None and depth <= 0:
        depth = None  # 0 from a flag or file means "no backpressure gate"
    service_config = ServiceConfig(
        max_nodes=sc.max_nodes,
        max_batch=sc.max_batch,
        max_body_bytes=sc.max_body_bytes,
        max_sessions=sc.max_sessions,
        backend=sc.backend,
        cost_profile=sc.cost_profile,
        queue_depth=depth,
        retry_after=sc.retry_after,
        worker_ttl=sc.worker_ttl,
        delay=sc.delay,
    )
    server = create_server(
        sc.host,
        sc.port,
        cache=cache,
        config=service_config,
        access_log=sc.access_log,
        warm_start=tuple(sc.warm_start),
        server=sc.server,
        pool_workers=sc.pool_workers,
    )
    if sc.warm_start:
        print(
            f"warm start: adopted {server.service.warm_start_adopted} "
            f"cached result(s) from {len(sc.warm_start)} file(s)",
            flush=True,
        )
    # The resolved URL is printed before blocking (and flushed) so
    # wrappers that pass --port 0 can scrape the picked port.
    print(f"repro service listening on {server.url}", flush=True)
    heartbeat = None
    if sc.register:
        # Join a worker pool: heartbeat our advertised URL to the
        # manager until shutdown, then withdraw it.
        advertise = sc.advertise or server.url
        heartbeat = Heartbeat(
            sc.register, advertise, interval=sc.heartbeat
        ).start()
        print(
            f"registering with {sc.register} as {advertise} "
            f"every {sc.heartbeat:g}s",
            flush=True,
        )
    try:
        server.serve_forever()
    except KeyboardInterrupt:
        pass
    finally:
        if heartbeat is not None:
            heartbeat.stop()
        server.server_close()
    return 0


def _cmd_config(args: argparse.Namespace) -> int:
    from .config import load_config

    config = load_config(getattr(args, "config", None))
    print(json.dumps(config.to_dict(), indent=2, sort_keys=True))
    return 0


def _cmd_client(args: argparse.Namespace) -> int:
    from .service import ServiceClient

    client = ServiceClient(args.url, timeout=args.timeout)
    if args.action == "health":
        print(json.dumps(client.health(), indent=2, sort_keys=True))
        return 0
    if args.action == "solvers":
        solvers = client.solvers()
        rows = [
            [spec["name"], spec["kind"], spec["guarantee"],
             "yes" if spec["heavy"] else "-", spec["summary"]]
            for spec in solvers
        ]
        print(
            format_table(
                ["name", "kind", "guarantee", "heavy", "summary"],
                rows,
                title=f"{len(solvers)} solvers served by {args.url}",
            )
        )
        return 0
    if args.action == "solve":
        graph = _load_graph(args)
        result = client.solve(
            graph,
            solver=args.solver,
            epsilon=args.epsilon,
            mode=args.mode,
            seed=args.seed,
        )
        print(f"minimum cut value : {result.value:g}  [{result.solver}, "
              f"{result.guarantee}]")
        print(f"witness side size : {len(result.side)} of {graph.number_of_nodes}")
        info = result.extras.get("cache")
        if info is not None:
            print(
                f"server cache      : {'hit' if info['hit'] else 'miss'} "
                f"({info['hits']} hit(s), {info['misses']} miss(es))"
            )
        return 0
    # args.action == "batch"
    graphs = [
        build_family(args.family, args.n, seed=args.seed + i)
        for i in range(args.count)
    ]
    results = client.solve_batch(
        graphs,
        solver=args.solver,
        epsilon=args.epsilon,
        seed=args.seed,
        backend=args.backend,
    )
    rows = []
    for index, (graph, result) in enumerate(zip(graphs, results)):
        info = result.extras.get("cache")
        note = "-" if info is None else ("hit" if info["hit"] else "miss")
        rows.append(
            [index, graph.number_of_nodes, graph.number_of_edges,
             result.solver, result.value, note]
        )
    print(
        format_table(
            ["#", "n", "m", "solver", "cut value", "cache"],
            rows,
            title=f"remote batch — family '{args.family}' via {args.url}",
        )
    )
    return 0


def _retention_policy(args: argparse.Namespace) -> "RetentionPolicy":
    """The effective retention policy for ``repro cache compact``.

    The usual precedence chain: ``--max-entries``/``--max-bytes``/
    ``--max-age`` flags beat ``$REPRO_CACHE_MAX_*``, which beat the
    config file's ``[cache]`` section, which beats the (unbounded)
    defaults.
    """
    from .config import load_config
    from .store import RetentionPolicy

    cache = load_config(getattr(args, "config", None)).merged(
        cache={
            "max_entries": args.max_entries,
            "max_bytes": args.max_bytes,
            "max_age": args.max_age,
        }
    ).cache
    return RetentionPolicy(
        max_entries=cache.max_entries,
        max_bytes=cache.max_bytes,
        max_age=cache.max_age,
    )


def _export_entries(path: str, entries: dict) -> None:
    """Write a schema-2 warm-start artifact from a store's entry map."""
    Path(path).write_text(
        json.dumps(
            {"schema": CACHE_SCHEMA_VERSION, "entries": entries},
            sort_keys=True,
        ),
        encoding="utf-8",
    )


def _print_compaction(report, *, header: str) -> None:
    print(
        f"{header}: kept {report.kept_entries} "
        f"entr{_ies(report.kept_entries)}, dropped "
        f"{report.dropped_entries} entr{_ies(report.dropped_entries)} "
        f"and {report.dropped_records - report.dropped_entries} dead "
        f"record(s); {report.segments_before} -> "
        f"{report.segments_after} segment(s), {report.bytes_before} -> "
        f"{report.bytes_after} bytes"
        + (
            f"; removed {report.orphans_removed} orphan file(s)"
            if report.orphans_removed
            else ""
        )
    )


def _cmd_cache(args: argparse.Namespace) -> int:
    from .store import SegmentStore

    if args.action == "merge":
        out = ResultCache(path=args.out)
        already = out.stats()["disk_entries"]
        added = kept = skipped_files = 0
        for source in args.inputs:
            try:
                counts = out.merge_from(source, flush=False)
            except ReproError as exc:
                # Typically a newer-schema file this version refuses to
                # read; report it instead of aborting a batch merge.
                print(f"{source}: skipped ({exc})")
                skipped_files += 1
                continue
            print(
                f"{source}: added {counts.added} "
                f"entr{_ies(counts.added)}, kept ours for "
                f"{counts.kept_ours}"
                + (f", skipped {counts.skipped} malformed" if counts.skipped else "")
            )
            added += counts.added
            kept += counts.kept_ours
        out.flush()
        total = out.stats()["disk_entries"]
        kind = (
            "store schema 3"
            if out.store is not None
            else f"schema {CACHE_SCHEMA_VERSION}"
        )
        print(
            f"wrote {args.out}: {total} entr{_ies(total)} ({kind}; "
            f"{already} already present, {added} added, {kept} kept ours, "
            f"{skipped_files} input(s) skipped)"
        )
        return 0 if skipped_files < len(args.inputs) else 2

    if args.action in ("compact", "gc"):
        store = SegmentStore(args.path, create=False)
        if args.action == "compact":
            report = store.compact(_retention_policy(args))
        else:
            report = store.gc()
        if getattr(args, "export", None):
            _export_entries(args.export, store.entries())
        if args.json:
            payload = dataclasses.asdict(report)
            payload["path"] = args.path
            if getattr(args, "export", None):
                payload["export"] = args.export
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            _print_compaction(report, header=f"{args.action} {args.path}")
            if getattr(args, "export", None):
                count = report.kept_entries
                print(
                    f"exported {count} entr{_ies(count)} to {args.export} "
                    f"(schema {CACHE_SCHEMA_VERSION} warm-start file)"
                )
        return 0

    if args.action == "segments":
        store = SegmentStore(args.path, create=False)
        infos = store.segment_infos()
        if args.json:
            print(
                json.dumps(
                    {"path": args.path, "segments": infos},
                    indent=2,
                    sort_keys=True,
                )
            )
            return 0
        print(f"{args.path}: {len(infos)} segment(s)")
        rows = [
            [
                info["name"],
                "sealed" if info["sealed"] else "active",
                str(info["records"]),
                str(info["puts"]),
                str(info["hit_records"]),
                str(info["bytes"]),
            ]
            for info in infos
        ]
        print(
            format_table(
                ["segment", "state", "records", "puts", "hits", "bytes"], rows
            )
        )
        return 0

    # args.action == "stats"
    entries = load_cache_file(args.path)
    by_solver: dict[str, int] = {}
    for payload in entries.values():
        solver = payload.get("solver")
        name = solver if isinstance(solver, str) else "<unknown>"
        by_solver[name] = by_solver.get(name, 0) + 1
    store_stats = None
    if Path(args.path).is_dir():
        store = SegmentStore(args.path, create=False)
        store_stats = store.stats()
        now = time.time()
        newest, oldest = store.newest_ts(), store.oldest_ts()
        store_stats["newest_entry_age"] = (
            None if newest is None else max(0.0, now - newest)
        )
        store_stats["oldest_entry_age"] = (
            None if oldest is None else max(0.0, now - oldest)
        )
    if args.json:
        payload = {
            "path": args.path,
            "entries": len(entries),
            "schema": 3 if store_stats is not None else CACHE_SCHEMA_VERSION,
            "by_solver": by_solver,
        }
        if store_stats is not None:
            payload["store"] = store_stats
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    if store_stats is not None:
        print(
            f"{args.path}: {len(entries)} live entr{_ies(len(entries))} "
            f"(store schema 3)"
        )
        print(
            f"  segments          : {store_stats['segments']} "
            f"({store_stats['store_bytes']} bytes on disk)"
        )
        print(
            f"  records           : {store_stats['live_entries']} live, "
            f"{store_stats['dead_records']} dead "
            f"({store_stats['compactions']} compaction(s) so far)"
        )
        if store_stats["oldest_entry_age"] is not None:
            print(
                f"  entry age         : newest "
                f"{store_stats['newest_entry_age']:.1f}s, oldest "
                f"{store_stats['oldest_entry_age']:.1f}s"
            )
    else:
        print(
            f"{args.path}: {len(entries)} entr{_ies(len(entries))} "
            f"(schema <= {CACHE_SCHEMA_VERSION})"
        )
    for name in sorted(by_solver):
        print(f"  {name:20s} {by_solver[name]}")
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    families = [part.strip() for part in args.families.split(",") if part.strip()]
    sizes = [int(part) for part in args.sizes.split(",") if part.strip()]
    started = time.perf_counter()
    report = run_calibration(
        solvers=args.solver or None,
        families=families,
        sizes=sizes,
        seed=args.seed,
        repeats=args.repeats,
        max_hand_cost=args.max_cost,
        include_dynamic=not args.no_dynamic,
    )
    elapsed = time.perf_counter() - started
    profile = report.profile
    registry = default_registry()
    print(
        format_table(
            [
                "solver", "samples", "R^2", "fitted rel err",
                "hand rel err", "s/cost-unit", "status",
            ],
            profile.rows(registry),
            title=(
                f"calibration — families {','.join(families)}, "
                f"sizes {','.join(str(s) for s in sizes)}, "
                f"{len(report.samples)} measurement(s) in {elapsed:.1f}s"
            ),
        )
    )
    fitted = [
        model for model in profile.models.values()
        if model.hand_rel_error is not None
    ]
    improved = sum(
        1 for model in fitted if model.rel_error <= model.hand_rel_error
    )
    print(
        f"\nfit quality       : fitted beats scaled hand model on "
        f"{improved}/{len(fitted)} solver(s)"
    )
    if profile.dynamic is not None:
        dyn = profile.dynamic
        print(
            f"dynamic costs     : patch {dyn.patch_slot_seconds:.2e} s/slot, "
            f"rebuild {dyn.rebuild_edge_seconds:.2e} s/edge "
            f"(patch_budget at m=1000: {profile.patch_budget_for(1000)})"
        )
    if report.skipped:
        print(f"skipped           : {len(report.skipped)} (solver, instance) pair(s)")
    path = profile.save(args.out)
    print(
        f"wrote {path}: schema {PROFILE_SCHEMA_VERSION}, "
        f"{len(profile.models)} fitted model(s) "
        f"(use --cost-profile {path} or export {REPRO_COST_PROFILE_ENV}={path})"
    )
    return 0


def _ies(count: int) -> str:
    return "y" if count == 1 else "ies"


def _cmd_bounds(args: argparse.Namespace) -> int:
    from .packing import certified_cut_bounds

    graph = _load_graph(args)
    bounds = certified_cut_bounds(graph)
    print(f"certified interval : [{bounds.lower:g}, {bounds.upper:g}]")
    print(f"edge-disjoint trees: {bounds.disjoint_trees} (proves λ ≥ {bounds.lower:g})")
    print(f"upper-bound witness: side of {len(bounds.upper_witness)} node(s)")
    if bounds.is_tight:
        print("interval is tight — λ is determined without any exact solver")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed minimum cut (Nanongkai, PODC 2014) — reproduction CLI",
    )
    parser.add_argument(
        "--config", default=None, metavar="PATH",
        help="TOML or JSON config file with [engine]/[serve]/[remote] "
             "sections (default: $REPRO_CONFIG); any flag passed on the "
             "command line still wins",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exact = sub.add_parser("exact", help="exact minimum cut")
    _add_instance_arguments(p_exact)
    p_exact.add_argument("--mode", choices=("reference", "congest"), default="reference")
    p_exact.add_argument("--trees", type=int, default=None, help="pin the packing size")
    _add_solver_argument(p_exact, default="exact")
    p_exact.set_defaults(handler=_cmd_exact)

    p_approx = sub.add_parser("approx", help="(1+eps)-approximate minimum cut")
    _add_instance_arguments(p_approx)
    p_approx.add_argument("--epsilon", type=float, default=0.5)
    p_approx.add_argument(
        "--mode", choices=("reference", "congest"), default="reference"
    )
    _add_solver_argument(p_approx, default="approx")
    p_approx.set_defaults(handler=_cmd_approx)

    p_rounds = sub.add_parser("rounds", help="measure Theorem 2.1 round scaling")
    p_rounds.add_argument(
        "--family", choices=sorted(FAMILY_BUILDERS), default="gnp"
    )
    p_rounds.add_argument("--sizes", default="64,144,256")
    p_rounds.add_argument("--seed", type=int, default=0)
    p_rounds.set_defaults(handler=_cmd_rounds)

    p_compare = sub.add_parser("compare", help="all registered solvers on one instance")
    _add_instance_arguments(p_compare)
    p_compare.add_argument("--epsilon", type=float, default=0.5)
    p_compare.add_argument(
        "--solver",
        action="append",
        choices=sorted(default_registry().names()),
        help="restrict to these solvers (repeatable; default: all applicable)",
    )
    p_compare.add_argument(
        "--heavy",
        action="store_true",
        help="include heavy solvers (full CONGEST pipelines)",
    )
    _add_execution_arguments(p_compare)
    p_compare.set_defaults(handler=_cmd_compare)

    p_sweep = sub.add_parser(
        "sweep", help="batch-solve generated instances via solve_batch"
    )
    p_sweep.add_argument(
        "--family", choices=sorted(FAMILY_BUILDERS), default="gnp"
    )
    p_sweep.add_argument("--n", type=int, default=64, help="approximate size")
    p_sweep.add_argument(
        "--count", type=int, default=8, help="number of instances to generate"
    )
    p_sweep.add_argument(
        "--seed", type=int, default=0,
        help="base seed (instance i uses seed + i, for generation and solving)",
    )
    p_sweep.add_argument(
        "--solver",
        choices=["auto"] + sorted(default_registry().names()),
        default="auto",
        help="registered solver to run on every instance (default: auto)",
    )
    p_sweep.add_argument(
        "--epsilon", type=float, default=None,
        help="approximation parameter (switches auto to approx solvers)",
    )
    p_sweep.add_argument(
        "--budget", type=int, default=None, help="per-solver effort cap"
    )
    p_sweep.add_argument(
        "--repeat", type=int, default=1,
        help="run the batch this many times (with --cache, later passes hit)",
    )
    p_sweep.add_argument(
        "--stream", default=None, metavar="OPSFILE",
        help="dynamic mode: replay a mutation ops file against one "
             "generated instance through a DynamicSession (one op per "
             "line, plus bare 'solve'/'undo' directives; '#' comments)",
    )
    p_sweep.add_argument(
        "--solve-every", type=int, default=None, metavar="N",
        help="with --stream: also solve after every N applied ops "
             "(besides explicit 'solve' lines)",
    )
    p_sweep.add_argument(
        "--patch-budget", type=int, default=None, metavar="COST",
        help="with --stream: force an index rebuild when a patch would "
             "splice more than COST CSR entries (default: always patch)",
    )
    p_sweep.add_argument(
        "--validate", action="store_true",
        help="with --stream: cross-check every patched index and "
             "certified solve against a from-scratch rebuild (slow)",
    )
    _add_execution_arguments(p_sweep)
    p_sweep.set_defaults(handler=_cmd_sweep)

    p_solvers = sub.add_parser("solvers", help="list the solver registry")
    p_solvers.add_argument(
        "--json", action="store_true",
        help="emit the registry as JSON instead of a table",
    )
    p_solvers.add_argument(
        "--profile", default=None, metavar="PATH",
        help="show fitted wall-time cost and calibration status from "
             f"this CostProfile (default: ${REPRO_COST_PROFILE_ENV} if set)",
    )
    p_solvers.set_defaults(handler=_cmd_solvers)

    p_calibrate = sub.add_parser(
        "calibrate",
        help="fit solver cost models against measured wall time",
    )
    p_calibrate.add_argument(
        "--out", default="cost_profile.json", metavar="PATH",
        help="CostProfile artifact to write (default: cost_profile.json)",
    )
    p_calibrate.add_argument(
        "--families", default="gnp,grid",
        help="comma-separated generator families for the grid",
    )
    p_calibrate.add_argument(
        "--sizes", default="12,16,24,32",
        help="comma-separated instance sizes for the grid",
    )
    p_calibrate.add_argument(
        "--solver", action="append",
        choices=sorted(default_registry().names()),
        help="calibrate only these solvers (repeatable; default: all "
             "non-heavy registered solvers)",
    )
    p_calibrate.add_argument("--seed", type=int, default=0)
    p_calibrate.add_argument(
        "--repeats", type=int, default=2,
        help="measurements per (solver, instance); best-of is fitted",
    )
    p_calibrate.add_argument(
        "--max-cost", type=float, default=5e7,
        help="skip (solver, instance) pairs whose hand model predicts "
             "more than this many cost units",
    )
    p_calibrate.add_argument(
        "--no-dynamic", action="store_true",
        help="skip the dynamic-graph patch-vs-rebuild calibration",
    )
    p_calibrate.set_defaults(handler=_cmd_calibrate)

    p_serve = sub.add_parser(
        "serve", help="run the JSON-over-HTTP solve service"
    )
    # All serve flags default to None: an omitted flag defers to the
    # [serve] section of the config file (then the schema default), and
    # a given flag beats both — the one precedence rule.
    p_serve.add_argument("--host", default=None, help="bind address (default: 127.0.0.1)")
    p_serve.add_argument(
        "--port", type=int, default=None,
        help="TCP port (0 picks a free one; default: 8000)",
    )
    p_serve.add_argument(
        "--server", choices=("async", "threading"), default=None,
        help="transport: 'async' (keep-alive event loop + bounded "
             "dispatch pool, the default) or 'threading' (historical "
             "thread-per-connection)",
    )
    p_serve.add_argument(
        "--pool-workers", type=int, default=None, metavar="N",
        help="async transport: dispatch thread-pool size "
             "(default: queue depth + headroom)",
    )
    p_serve.add_argument(
        "--queue-depth", type=int, default=None, metavar="N",
        help="solver requests queued or running before the service "
             "answers 429 + Retry-After (0 disables; default: 32)",
    )
    p_serve.add_argument(
        "--retry-after", type=float, default=None, metavar="SECONDS",
        help="suggested client backoff carried on 429 responses",
    )
    p_serve.add_argument(
        "--delay", type=float, default=None, metavar="SECONDS",
        help="inject this much sleep per task solved (straggler "
             "simulation for benchmarks/CI; default: 0)",
    )
    p_serve.add_argument(
        "--cache-file", default=None, metavar="PATH",
        help="persist the shared result cache to this JSON file or "
             "segment-store directory",
    )
    p_serve.add_argument(
        "--backend", choices=sorted(BACKENDS), default=None,
        help="default execution backend for /solve_batch",
    )
    p_serve.add_argument(
        "--max-nodes", type=int, default=None,
        help="reject (413) single graphs larger than this (default: 4096)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=None,
        help="reject (413) batches longer than this (default: 256)",
    )
    p_serve.add_argument(
        "--access-log", default=None, metavar="PATH",
        help="append one line per request to this file (default: stderr)",
    )
    p_serve.add_argument(
        "--warm-start", action="append", default=None, metavar="PATH",
        help="merge this cache file or store directory into the shared "
             "cache before serving "
             "(repeatable; see `repro cache merge`)",
    )
    p_serve.add_argument(
        "--cost-profile", default=None, metavar="PATH",
        help="calibrated CostProfile for the server engine's packing "
             f"and budget decisions (default: ${REPRO_COST_PROFILE_ENV})",
    )
    p_serve.add_argument(
        "--register", default=None, metavar="URL",
        help="pool manager to heartbeat this worker's URL to (any other "
             "`repro serve` process; enables discovery without restarts)",
    )
    p_serve.add_argument(
        "--advertise", default=None, metavar="URL",
        help="URL to register as (default: the listening URL — set this "
             "when the bind address is not what clients should dial)",
    )
    p_serve.add_argument(
        "--heartbeat", type=float, default=None, metavar="SECONDS",
        help="re-registration interval with --register (default: 5)",
    )
    p_serve.add_argument(
        "--worker-ttl", type=float, default=None, metavar="SECONDS",
        help="how long this server lists a registered worker without a "
             "fresh heartbeat (default: 15)",
    )
    p_serve.set_defaults(handler=_cmd_serve)

    p_config = sub.add_parser(
        "config", help="inspect the effective configuration"
    )
    config_sub = p_config.add_subparsers(dest="action", required=True)
    p_show = config_sub.add_parser(
        "show",
        help="print the effective config (defaults + file + env) as JSON",
    )
    p_show.set_defaults(handler=_cmd_config)

    p_client = sub.add_parser(
        "client", help="talk to a running repro service"
    )
    client_sub = p_client.add_subparsers(dest="action", required=True)
    for action, help_text in (
        ("health", "GET /healthz"),
        ("solvers", "GET /solvers"),
        ("solve", "POST /solve with a generated or file instance"),
        ("batch", "POST /solve_batch with generated instances"),
    ):
        p_action = client_sub.add_parser(action, help=help_text)
        p_action.add_argument(
            "--url", required=True, help="service base URL, e.g. http://127.0.0.1:8000"
        )
        p_action.add_argument(
            "--timeout", type=float, default=60.0, help="per-request timeout (s)"
        )
        if action == "solve":
            _add_instance_arguments(p_action)
            p_action.add_argument("--solver", default="auto")
            p_action.add_argument("--epsilon", type=float, default=None)
            p_action.add_argument(
                "--mode", choices=("reference", "congest"), default="reference"
            )
        elif action == "batch":
            p_action.add_argument(
                "--family", choices=sorted(FAMILY_BUILDERS), default="gnp"
            )
            p_action.add_argument("--n", type=int, default=64)
            p_action.add_argument("--count", type=int, default=8)
            p_action.add_argument("--seed", type=int, default=0)
            p_action.add_argument("--solver", default="auto")
            p_action.add_argument("--epsilon", type=float, default=None)
            p_action.add_argument(
                "--backend", choices=sorted(BACKENDS), default=None,
                help="server-side execution backend for the fan-out",
            )
        p_action.set_defaults(handler=_cmd_client)

    p_cache = sub.add_parser(
        "cache",
        help="result-cache tooling (merge, stats, compact, gc, segments)",
    )
    cache_sub = p_cache.add_subparsers(dest="action", required=True)
    p_merge = cache_sub.add_parser(
        "merge",
        help="merge cache files/stores into one warm-start target "
             "(existing entries in --out win on conflict; a directory "
             "--out writes a segment store)",
    )
    p_merge.add_argument(
        "--out", required=True, metavar="PATH",
        help="merged cache file (*.json) or store directory to write",
    )
    p_merge.add_argument(
        "inputs", nargs="+", metavar="CACHE",
        help="cache files or store directories to merge in",
    )
    p_merge.set_defaults(handler=_cmd_cache)
    p_stats = cache_sub.add_parser(
        "stats",
        help="entry count, per-solver breakdown, and (for a store "
             "directory) segment/byte/age counters",
    )
    p_stats.add_argument(
        "path", metavar="CACHE", help="cache file or store directory"
    )
    p_stats.add_argument(
        "--json", action="store_true",
        help="emit the stats as JSON instead of text",
    )
    p_stats.set_defaults(handler=_cmd_cache)
    p_compact = cache_sub.add_parser(
        "compact",
        help="fold a store's segments into one under the retention "
             "policy ([cache] config section; flags below win)",
    )
    p_compact.add_argument(
        "path", metavar="STORE", help="segment-store directory"
    )
    p_compact.add_argument(
        "--max-entries", type=int, default=None, metavar="N",
        help="keep at most N entries (most-frequently/-recently hit win)",
    )
    p_compact.add_argument(
        "--max-bytes", type=int, default=None, metavar="BYTES",
        help="keep the best-ranked entries fitting this byte budget",
    )
    p_compact.add_argument(
        "--max-age", type=float, default=None, metavar="SECONDS",
        help="drop entries idle longer than this (vs the newest record)",
    )
    p_compact.add_argument(
        "--export", default=None, metavar="FILE",
        help="also write the surviving entries as a schema-2 JSON "
             "warm-start artifact",
    )
    p_compact.add_argument(
        "--json", action="store_true",
        help="emit the compaction report as JSON",
    )
    p_compact.set_defaults(handler=_cmd_cache)
    p_gc = cache_sub.add_parser(
        "gc",
        help="drop dead records and orphan segment files, keeping "
             "every live entry",
    )
    p_gc.add_argument("path", metavar="STORE", help="segment-store directory")
    p_gc.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    p_gc.set_defaults(handler=_cmd_cache)
    p_segments = cache_sub.add_parser(
        "segments", help="per-segment breakdown of a store directory"
    )
    p_segments.add_argument(
        "path", metavar="STORE", help="segment-store directory"
    )
    p_segments.add_argument(
        "--json", action="store_true", help="emit the breakdown as JSON"
    )
    p_segments.set_defaults(handler=_cmd_cache)

    p_bounds = sub.add_parser("bounds", help="certified minimum-cut interval")
    _add_instance_arguments(p_bounds)
    p_bounds.set_defaults(handler=_cmd_bounds)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
