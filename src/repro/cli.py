"""Command-line interface: ``python -m repro <command> ...``.

Commands
--------
``exact``      exact minimum cut of a generated family or an edge-list
               file (Thorup packing + 1-respecting cuts; optional
               congest mode with round accounting).
``approx``     the (1+ε)-approximation via Karger sampling.
``rounds``     measure Theorem 2.1's distributed rounds over a size
               sweep of one family and fit the scaling exponent.
``compare``    run every algorithm (ours + baselines) on one instance
               and print the agreement table.
``bounds``     certified λ interval from edge-disjoint tree packings.

Examples
--------
::

    python -m repro exact --family gnp --n 128 --mode congest
    python -m repro approx --family complete --n 64 --epsilon 0.5
    python -m repro rounds --family grid --sizes 64,144,324
    python -m repro compare --file mygraph.edges
"""

from __future__ import annotations

import argparse
import math
import sys
from typing import Optional

from .analysis import fit_power_law, format_table
from .baselines import (
    matula_approx_min_cut,
    stoer_wagner_min_cut,
    su_approx_min_cut,
)
from .core import one_respecting_min_cut_congest
from .errors import ReproError
from .graphs import (
    WeightedGraph,
    build_family,
    diameter,
    random_spanning_tree,
    read_edge_list,
    FAMILY_BUILDERS,
)
from .mincut import minimum_cut_approx, minimum_cut_exact


def _load_graph(args: argparse.Namespace) -> WeightedGraph:
    if args.file:
        graph = read_edge_list(args.file)
    else:
        graph = build_family(args.family, args.n, seed=args.seed)
    graph.require_connected()
    return graph


def _add_instance_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--family",
        choices=sorted(FAMILY_BUILDERS),
        default="gnp",
        help="generated graph family (ignored with --file)",
    )
    parser.add_argument("--n", type=int, default=64, help="approximate size")
    parser.add_argument("--seed", type=int, default=0, help="generator seed")
    parser.add_argument(
        "--file", default=None, help="edge-list file (overrides --family)"
    )


def _cmd_exact(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    result = minimum_cut_exact(graph, mode=args.mode, tree_count=args.trees)
    print(f"minimum cut value : {result.value:g}")
    print(f"witness side size : {len(result.side)} of {graph.number_of_nodes}")
    print(f"packing trees used: {result.trees_used} (winner: #{result.tree_index})")
    if result.metrics is not None:
        summary = result.metrics.summary()
        print(
            f"rounds            : {summary['total_rounds']} "
            f"({summary['measured_rounds']} measured + "
            f"{summary['charged_rounds']} charged), "
            f"{summary['messages']} messages"
        )
    return 0


def _cmd_approx(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    result = minimum_cut_approx(graph, epsilon=args.epsilon, seed=args.seed)
    path = "sampling" if result.used_sampling else "exact (small lambda)"
    print(f"(1+eps) cut value : {result.value:g}   [eps={args.epsilon}, via {path}]")
    print(f"witness side size : {len(result.side)} of {graph.number_of_nodes}")
    if result.used_sampling:
        print(
            f"sampling rate p   : {result.probability:.4f}  "
            f"(skeleton min cut {result.skeleton_value:g})"
        )
    return 0


def _cmd_rounds(args: argparse.Namespace) -> int:
    sizes = [int(s) for s in args.sizes.split(",")]
    rows = []
    xs, ys = [], []
    for n in sizes:
        graph = build_family(args.family, n, seed=args.seed)
        tree = random_spanning_tree(graph, seed=args.seed)
        outcome = one_respecting_min_cut_congest(graph, tree)
        d = diameter(graph)
        actual = graph.number_of_nodes
        measured = outcome.metrics.measured_rounds
        xs.append(math.sqrt(actual) + d)
        ys.append(measured)
        rows.append(
            [actual, d, measured, outcome.metrics.charged_rounds,
             round(measured / (math.sqrt(actual) + d), 2)]
        )
    print(
        format_table(
            ["n", "D", "measured", "charged", "measured/(sqrt(n)+D)"],
            rows,
            title=f"Theorem 2.1 rounds — family '{args.family}'",
        )
    )
    if len(sizes) >= 2:
        fit = fit_power_law(xs, ys)
        print(
            f"\nfit: rounds ~ (sqrt(n)+D)^{fit.exponent:.2f} "
            f"(R^2={fit.r_squared:.3f})"
        )
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    graph = _load_graph(args)
    truth = stoer_wagner_min_cut(graph)
    rows = [["Stoer-Wagner (ground truth)", truth.value, 1.0]]
    exact = minimum_cut_exact(graph)
    rows.append(["this paper, exact", exact.value, exact.value / truth.value])
    approx = minimum_cut_approx(graph, epsilon=args.epsilon, seed=args.seed)
    rows.append(
        [f"this paper, (1+{args.epsilon})", approx.value, approx.value / truth.value]
    )
    matula = matula_approx_min_cut(graph, epsilon=args.epsilon)
    rows.append(
        [f"Matula (2+{args.epsilon}) [GK13 analog]", matula.value,
         matula.value / truth.value]
    )
    su = su_approx_min_cut(graph, seed=args.seed)
    rows.append(["Su (sampling+bridges)", su.value, su.value / truth.value])
    print(
        format_table(
            ["algorithm", "cut value", "ratio"],
            [[name, val, round(ratio, 4)] for name, val, ratio in rows],
            title=f"n={graph.number_of_nodes}, m={graph.number_of_edges}",
        )
    )
    return 0


def _cmd_bounds(args: argparse.Namespace) -> int:
    from .packing import certified_cut_bounds

    graph = _load_graph(args)
    bounds = certified_cut_bounds(graph)
    print(f"certified interval : [{bounds.lower:g}, {bounds.upper:g}]")
    print(f"edge-disjoint trees: {bounds.disjoint_trees} (proves λ ≥ {bounds.lower:g})")
    print(f"upper-bound witness: side of {len(bounds.upper_witness)} node(s)")
    if bounds.is_tight:
        print("interval is tight — λ is determined without any exact solver")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Distributed minimum cut (Nanongkai, PODC 2014) — reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_exact = sub.add_parser("exact", help="exact minimum cut")
    _add_instance_arguments(p_exact)
    p_exact.add_argument("--mode", choices=("reference", "congest"), default="reference")
    p_exact.add_argument("--trees", type=int, default=None, help="pin the packing size")
    p_exact.set_defaults(handler=_cmd_exact)

    p_approx = sub.add_parser("approx", help="(1+eps)-approximate minimum cut")
    _add_instance_arguments(p_approx)
    p_approx.add_argument("--epsilon", type=float, default=0.5)
    p_approx.set_defaults(handler=_cmd_approx)

    p_rounds = sub.add_parser("rounds", help="measure Theorem 2.1 round scaling")
    p_rounds.add_argument(
        "--family", choices=sorted(FAMILY_BUILDERS), default="gnp"
    )
    p_rounds.add_argument("--sizes", default="64,144,256")
    p_rounds.add_argument("--seed", type=int, default=0)
    p_rounds.set_defaults(handler=_cmd_rounds)

    p_compare = sub.add_parser("compare", help="all algorithms on one instance")
    _add_instance_arguments(p_compare)
    p_compare.add_argument("--epsilon", type=float, default=0.5)
    p_compare.set_defaults(handler=_cmd_compare)

    p_bounds = sub.add_parser("bounds", help="certified minimum-cut interval")
    _add_instance_arguments(p_bounds)
    p_bounds.set_defaults(handler=_cmd_bounds)

    return parser


def main(argv: Optional[list[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    raise SystemExit(main())
