"""The request/response server over the :mod:`repro.api` façade.

Architecture — three layers, separable on purpose:

* :class:`ReproService` is the transport-free core: a ``dispatch``
  method mapping ``(method, path, body bytes)`` onto
  ``(status, payload dict)``.  Its long-lived state is **one**
  :class:`~repro.api.engine.Engine` — the session object owning the
  solver registry, the shared :class:`~repro.exec.cache.ResultCache`
  consulted by every request (optionally disk-backed, optionally
  warm-started from merged cache files) and the default batch backend
  — plus request counters and the start timestamp.  All algorithm work
  funnels through the engine (:meth:`Engine.solve` /
  :meth:`Engine.build_batch_tasks` + :meth:`Engine.solve_tasks`), so
  requests become the same :class:`~repro.exec.task.SolveTask` fan-out
  the CLI's ``sweep`` uses, on the same ``serial``/``thread``/
  ``process`` backends — including shard slices whose per-task seeds
  and solvers arrive frozen (the ``remote`` backend's wire form).
* Two interchangeable transports wrap the core: :class:`AsyncHTTPServer`
  (the default — an asyncio event loop where idle keep-alive
  connections cost a coroutine, not an OS thread, and dispatch runs on
  a bounded worker pool) and :class:`ReproHTTPServer` (the historical
  stdlib :class:`~http.server.ThreadingHTTPServer`).  Both JSON over
  HTTP, no new dependencies, optional access-log file, identical
  lifecycle (``serve_forever`` / ``shutdown`` / ``server_close``).
* :mod:`repro.service.client` speaks the same protocol back.

Endpoints::

    POST /solve        one graph  -> one CutResult
    POST /solve_batch  many graphs -> many CutResults (backend knob)
    POST /mutate       dynamic-graph sessions: open/ops/undo/solve/close,
                       each op acknowledged with the resulting graph hash
    POST /register     worker-pool membership: announce/renew/withdraw a
                       worker URL (heartbeat; TTL-expired entries drop)
    GET  /workers      the live registered worker URLs
    GET  /solvers      the registry with capability + cost metadata
    GET  /healthz      version, uptime, cache hit/miss counters, sessions

Error contract: every non-2xx response is a structured JSON body
``{"error": {"type", "message", "status"}}`` where ``type`` is the
:mod:`repro.errors` class name — envelope problems are 400
(:class:`~repro.errors.ServiceError`), instances over the configured
limits are 413, unknown paths 404, wrong verbs 405, and anything a
solver raises on a validated instance is a 400 naming the library
exception (``AlgorithmError``, ``DisconnectedGraphError``, ...).
Backpressure is part of the contract too: past ``queue_depth``
concurrently queued-or-running solver requests, the service answers a
structured 429 whose body (and ``Retry-After`` header) carries the
seconds to wait — bounded memory instead of unbounded thread growth.

Concurrency model: the transport multiplexes connections, but solver
work is serialised behind one lock — CPU-bound pure-Python solvers gain
nothing from interleaving, and the shared cache's LRU bookkeeping is
not thread-safe.  Parallelism belongs to the *backend* knob (a batch
request fans out across processes) and to the pool of workers
(``/register``-discovered, consumed by the ``remote`` backend's
streaming dispatch).  ``/healthz``, ``/workers`` and ``/register``
bypass both the queue gate and the solver lock, so membership probing
keeps working while the solver path is saturated.
"""

from __future__ import annotations

import asyncio
import http.client
import json
import math
import socket
import sys
import threading
import time
import uuid
from concurrent.futures import ThreadPoolExecutor
from contextlib import contextmanager
from dataclasses import dataclass
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Union

from ..api.engine import Engine
from ..api.registry import SolverRegistry
from ..errors import ConfigError, ReproError, ServiceError
from ..exec.cache import ResultCache
from .protocol import (
    PROTOCOL_VERSION,
    cut_result_to_json,
    error_body,
    json_default,
    parse_batch_request,
    parse_mutate_request,
    parse_register_request,
    parse_solve_request,
)


#: Backend names a *request* may select for the server-side fan-out.
#: Local executors only — see the 400 in ``_handle_batch`` for why.
_REQUEST_BACKENDS = frozenset({"serial", "thread", "process"})


def _retry_after_header(payload: object) -> Optional[str]:
    """``Retry-After`` delta-seconds for a backpressure body, if any."""
    error = payload.get("error") if isinstance(payload, dict) else None
    if isinstance(error, dict):
        value = error.get("retry_after")
        if not isinstance(value, bool) and isinstance(value, (int, float)):
            return str(max(0, math.ceil(value)))
    return None


@dataclass(frozen=True)
class ServiceConfig:
    """Operator-facing limits and defaults for one service process.

    ``max_nodes`` / ``max_batch`` bound a single request's instance size
    and batch length (over-limit requests get a structured 413 instead
    of tying up the solver lock); ``max_body_bytes`` bounds the raw
    request body and is enforced from the ``Content-Length`` header
    *before* any byte is read or parsed, so an oversized POST cannot
    make a handler thread buffer it first.  ``max_sessions`` bounds the
    number of concurrently open ``/mutate`` dynamic-graph sessions
    (each pins a live graph + index in server memory); opening one more
    answers 429 until a session is closed.  ``backend`` is the default
    execution backend for ``/solve_batch`` when the request does not
    name one (``None`` defers to ``$REPRO_BACKEND`` / serial).
    ``cost_profile`` is a path to a calibrated
    :class:`~repro.exec.calibrate.CostProfile` for the server engine
    (cost-aware chunk packing, seconds-denominated budgets; ``None``
    defers to ``$REPRO_COST_PROFILE``).

    ``queue_depth`` bounds solver-path requests concurrently queued or
    running: one more gets a structured 429 telling the client to come
    back in ``retry_after`` seconds (``None`` disables the gate).
    ``worker_ttl`` is how long a ``/register``-ed worker stays listed
    without a fresh heartbeat.  ``delay`` injects that many seconds of
    sleep per task solved — the straggler-worker knob the P3 benchmark
    and the CI latency-smoke use; leave it 0 in production.
    """

    max_nodes: Optional[int] = 4096
    max_batch: Optional[int] = 256
    max_body_bytes: Optional[int] = 32 * 1024 * 1024
    max_sessions: Optional[int] = 32
    backend: Optional[str] = None
    cost_profile: Optional[str] = None
    queue_depth: Optional[int] = 32
    retry_after: float = 1.0
    worker_ttl: float = 15.0
    delay: float = 0.0


class ReproService:
    """Transport-free request handling over one :class:`Engine`.

    ``warm_start`` paths are merged into the engine's cache before the
    first request is served — the deployment story for sharded sweeps:
    merge the workers' ``--cache-file`` tiers (``python -m repro cache
    merge``) and hand the result to the next fleet so it starts warm.
    """

    def __init__(
        self,
        registry: Optional[SolverRegistry] = None,
        cache: Optional[ResultCache] = None,
        config: Optional[ServiceConfig] = None,
        warm_start: tuple = (),
    ) -> None:
        self.config = config if config is not None else ServiceConfig()
        self.engine = Engine(
            registry=registry,
            cache=cache if cache is not None else ResultCache(),
            backend=self.config.backend,
            cost_profile=self.config.cost_profile,
        )
        self.warm_start_adopted = (
            self.engine.warm_start(*warm_start) if warm_start else 0
        )
        self.started = time.time()
        self.counters = {
            "solve": 0, "solve_batch": 0, "mutate": 0, "register": 0,
            "errors": 0, "throttled": 0,
        }
        #: Open dynamic-graph sessions by id; guarded by the solve lock
        #: (session state and the shared cache are not thread-safe).
        self.sessions: dict[str, object] = {}
        #: Registered worker URLs -> last heartbeat (monotonic seconds);
        #: guarded by the stats lock, pruned lazily against worker_ttl.
        self.workers_seen: dict[str, float] = {}
        self._solve_lock = threading.Lock()
        self._stats_lock = threading.Lock()
        depth = self.config.queue_depth
        if depth is not None and depth < 1:
            raise ConfigError(f"queue_depth must be >= 1 or None, got {depth}")
        self._admit_slots = (
            threading.BoundedSemaphore(depth) if depth is not None else None
        )

    @property
    def registry(self) -> SolverRegistry:
        return self.engine.registry

    @property
    def cache(self) -> ResultCache:
        return self.engine.cache

    # -- dispatch ------------------------------------------------------

    def dispatch(self, method: str, path: str, body: bytes) -> tuple[int, dict]:
        """Route one request; never raises — errors become 4xx/5xx bodies."""
        path = path.split("?", 1)[0].rstrip("/") or "/"
        routes = {
            "/healthz": ("GET", self._handle_health),
            "/solvers": ("GET", self._handle_solvers),
            "/workers": ("GET", self._handle_workers),
            "/solve": ("POST", self._handle_solve),
            "/solve_batch": ("POST", self._handle_batch),
            "/mutate": ("POST", self._handle_mutate),
            "/register": ("POST", self._handle_register),
        }
        try:
            if path not in routes:
                raise ServiceError(f"unknown path {path!r}", status=404)
            expected, handler = routes[path]
            if method != expected:
                raise ServiceError(
                    f"{path} expects {expected}, got {method}", status=405
                )
            payload = self._decode_body(body) if expected == "POST" else None
            return 200, handler(payload)
        except ServiceError as exc:
            return self._error(exc, exc.status)
        except ReproError as exc:
            # A library-raised condition on an otherwise well-formed
            # request (disconnected graph, unknown solver, solver
            # precondition): the client's fault, structurally reported.
            return self._error(exc, 400)
        except Exception as exc:  # noqa: BLE001 - the server must answer
            return self._error(exc, 500)

    def _decode_body(self, body: bytes) -> object:
        try:
            return json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            raise ServiceError("request body is not valid JSON") from None

    def _error(self, exc: Exception, status: int) -> tuple[int, dict]:
        with self._stats_lock:
            self.counters["errors"] += 1
        return status, error_body(exc, status)

    def _count(self, endpoint: str) -> None:
        with self._stats_lock:
            self.counters[endpoint] += 1

    # -- backpressure --------------------------------------------------

    @contextmanager
    def _admit(self):
        """One slot on the solver path, or a structured 429.

        The gate sits *before* the solver lock: requests past
        ``queue_depth`` are bounced immediately with ``retry_after``
        seconds in the body (and the ``Retry-After`` header), instead
        of each parking a transport thread on the lock.  ``/healthz``,
        ``/workers`` and ``/register`` never pass through here, so
        health probing — the pool manager's livelihood — keeps working
        while the solver path is saturated.
        """
        slots = self._admit_slots
        if slots is None:
            yield
            return
        if not slots.acquire(blocking=False):
            with self._stats_lock:
                self.counters["throttled"] += 1
            retry_after = self.config.retry_after
            raise ServiceError(
                f"solver queue is full ({self.config.queue_depth} "
                f"request(s) queued or running); retry after "
                f"{retry_after:g}s",
                status=429,
                retry_after=retry_after,
            )
        try:
            yield
        finally:
            slots.release()

    def _straggle(self, units: int) -> None:
        """The injected-straggler knob: ``delay`` seconds per task."""
        if self.config.delay > 0:
            time.sleep(self.config.delay * units)

    # -- endpoints -----------------------------------------------------

    def _check_size(self, graph, label: str = "graph") -> None:
        limit = self.config.max_nodes
        if limit is not None and graph.number_of_nodes > limit:
            raise ServiceError(
                f"{label} has {graph.number_of_nodes} nodes, over this "
                f"service's limit of {limit}",
                status=413,
            )

    def _handle_solve(self, body: object) -> dict:
        request = parse_solve_request(body)
        graph = request["graph"]
        self._check_size(graph)
        self._count("solve")
        with self._admit(), self._solve_lock:
            self._straggle(1)
            result = self.engine.solve(
                graph,
                request["solver"],
                epsilon=request["epsilon"],
                mode=request["mode"],
                seed=request["seed"],
                budget=request["budget"],
                **request["options"],
            )
        return {"result": cut_result_to_json(result)}

    def _handle_batch(self, body: object) -> dict:
        request = parse_batch_request(body)
        graphs = request["graphs"]
        limit = self.config.max_batch
        if limit is not None and len(graphs) > limit:
            raise ServiceError(
                f"batch of {len(graphs)} graphs is over this service's "
                f"limit of {limit}",
                status=413,
            )
        for position, graph in enumerate(graphs):
            self._check_size(graph, label=f"graph #{position}")
        self._count("solve_batch")
        backend = request["backend"]
        if backend is not None and backend not in _REQUEST_BACKENDS:
            # The per-request knob selects how *this worker* fans out.
            # Distribution-class backends ("remote") are refused: a
            # request must not be able to turn a worker into an HTTP
            # client of other machines (or of itself, deadlocking on
            # the solve lock) — that topology is the operator's call,
            # via the server-side default.
            raise ServiceError(
                f"'backend' must be one of {sorted(_REQUEST_BACKENDS)} "
                f"(or null for the server default), got {backend!r}"
            )
        backend = backend or self.config.backend
        with self._admit(), self._solve_lock:
            self._straggle(len(graphs))
            # Freeze the batch into tasks, honouring the protocol's
            # per-task seed/solver overrides when a shard slice arrives,
            # then run them on the engine's backend + shared cache.
            tasks = self.engine.build_batch_tasks(
                graphs,
                solver=request["solver"],
                epsilon=request["epsilon"],
                mode=request["mode"],
                seed=request["seed"],
                budget=request["budget"],
                options=request["options"],
                seeds=request["seeds"],
                solvers=request["solvers"],
            )
            results = self.engine.solve_tasks(tasks, backend=backend)
        return {"results": [cut_result_to_json(result) for result in results]}

    def _handle_mutate(self, body: object) -> dict:
        """Dynamic-graph sessions: pod-style per-op-acknowledged mutation.

        Execution order within one request: undo, then ops, then solve,
        then close.  Each op is individually applied and acknowledged
        with the resulting graph ``content_hash``; on a mid-request
        failure the ops already acknowledged *remain applied* (the log
        is append-only — the error body says how many committed, and
        ``undo`` can rewind them).
        """
        from ..dynamic.ops import AddEdge, AddNode

        request = parse_mutate_request(body)
        self._count("mutate")
        with self._admit(), self._solve_lock:
            if request["open"] is not None:
                opened = request["open"]
                limit = self.config.max_sessions
                if limit is not None and len(self.sessions) >= limit:
                    raise ServiceError(
                        f"{len(self.sessions)} sessions already open, at "
                        f"this service's limit of {limit}; close one first",
                        status=429,
                    )
                graph = opened["graph"]
                self._check_size(graph)
                session_id = uuid.uuid4().hex[:12]
                session = self.engine.dynamic_session(
                    graph,
                    solver=opened["solver"],
                    epsilon=opened["epsilon"],
                    mode=opened["mode"],
                    seed=opened["seed"],
                    patch_budget=opened["patch_budget"],
                    copy=False,  # the graph was parsed for this session
                )
                self.sessions[session_id] = session
            else:
                session_id = request["session"]
                session = self.sessions.get(session_id)
                if session is None:
                    raise ServiceError(
                        f"unknown session {session_id!r} (expired or never "
                        "opened)",
                        status=404,
                    )
            acks = []
            committed = 0
            try:
                for _ in range(request["undo"]):
                    acks.append(session.undo())
                    committed += 1
                node_limit = self.config.max_nodes
                for position, op in enumerate(request["ops"]):
                    if node_limit is not None and isinstance(
                        op, (AddEdge, AddNode)
                    ):
                        growth = sum(
                            1
                            for x in {getattr(op, "u", None),
                                      getattr(op, "v", None)}
                            if x is not None and x not in session.graph
                        )
                        if session.graph.number_of_nodes + growth > node_limit:
                            raise ServiceError(
                                f"op #{position} would grow the graph past "
                                f"this service's limit of {node_limit} nodes",
                                status=413,
                            )
                    acks.append(session.apply(op))
                    committed += 1
            except ServiceError as exc:
                raise ServiceError(
                    f"{exc} ({committed} earlier action(s) in this request "
                    "remain applied)",
                    status=exc.status,
                ) from exc
            except ReproError as exc:
                raise ServiceError(
                    f"{exc} ({committed} earlier action(s) in this request "
                    "remain applied)",
                    status=400,
                ) from exc
            result = None
            if request["solve"]:
                result = cut_result_to_json(session.solve())
            stats = session.stats()
            graph_hash = session.graph.content_hash()
            if request["close"]:
                del self.sessions[session_id]
        return {
            "session": session_id,
            "closed": request["close"],
            "acks": acks,
            "graph_hash": graph_hash,
            "result": result,
            "stats": stats,
        }

    # -- worker-pool membership ----------------------------------------

    def _live_workers_locked(self, now: float) -> list[str]:
        """Prune TTL-lapsed heartbeats; stats lock held by the caller."""
        ttl = self.config.worker_ttl
        expired = [
            url for url, seen in self.workers_seen.items() if now - seen > ttl
        ]
        for url in expired:
            del self.workers_seen[url]
        return list(self.workers_seen)

    def _handle_register(self, body: object) -> dict:
        request = parse_register_request(body)
        self._count("register")
        now = time.monotonic()
        with self._stats_lock:
            if request["leaving"]:
                self.workers_seen.pop(request["url"], None)
            else:
                self.workers_seen[request["url"]] = now
            workers = self._live_workers_locked(now)
        return {"workers": workers, "ttl": self.config.worker_ttl}

    def _handle_workers(self, _body: object) -> dict:
        with self._stats_lock:
            workers = self._live_workers_locked(time.monotonic())
        return {"workers": workers, "ttl": self.config.worker_ttl}

    def _handle_solvers(self, _body: object) -> dict:
        return {
            "solvers": [
                {
                    "name": spec.name,
                    "kind": spec.kind,
                    "guarantee": spec.guarantee,
                    "display": spec.display,
                    "summary": spec.summary,
                    "supports_congest": spec.supports_congest,
                    "requires_integer_weights": spec.requires_integer_weights,
                    "randomized": spec.randomized,
                    "max_nodes": spec.max_nodes,
                    "heavy": spec.heavy,
                    "cost@(100,300)": (
                        spec.cost_model(100, 300)
                        if spec.cost_model is not None
                        else None
                    ),
                }
                for spec in self.registry
            ]
        }

    def _handle_health(self, _body: object) -> dict:
        # ``cache`` carries the ResultCache counters; with a segment
        # store attached (``--cache-file`` naming a directory) the
        # store's counters — segments, live/dead records, bytes,
        # compactions — ride along in the same dict.
        from .. import __version__

        with self._stats_lock:
            counters = dict(self.counters)
            workers = self._live_workers_locked(time.monotonic())
        return {
            "status": "ok",
            "version": __version__,
            "protocol": PROTOCOL_VERSION,
            "uptime_seconds": time.time() - self.started,
            "solvers": len(self.registry),
            "sessions": len(self.sessions),
            "workers": len(workers),
            "cache": self.cache.stats(),
            "requests": counters,
        }


class _ServiceHandler(BaseHTTPRequestHandler):
    """Thin HTTP shim: read body, call ``dispatch``, write JSON."""

    protocol_version = "HTTP/1.1"

    def do_GET(self) -> None:  # noqa: N802 - http.server naming contract
        self._respond("GET")

    def do_POST(self) -> None:  # noqa: N802 - http.server naming contract
        self._respond("POST")

    def _respond(self, method: str) -> None:
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        limit = self.server.service.config.max_body_bytes
        if limit is not None and length > limit:
            # Refuse before reading a single body byte; the unread body
            # makes the connection unusable, so close it.
            self.close_connection = True
            status, payload = 413, error_body(
                ServiceError(
                    f"request body of {length} bytes is over this "
                    f"service's limit of {limit}",
                    status=413,
                ),
                413,
            )
        else:
            body = self.rfile.read(length) if length > 0 else b""
            status, payload = self.server.service.dispatch(method, self.path, body)
        blob = json.dumps(payload, default=json_default).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(blob)))
        retry_after = _retry_after_header(payload)
        if retry_after is not None:
            self.send_header("Retry-After", retry_after)
        self.end_headers()
        self.wfile.write(blob)

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        line = "%s - - [%s] %s\n" % (
            self.address_string(), self.log_date_time_string(), format % args,
        )
        stream = self.server.access_log or sys.stderr
        stream.write(line)
        stream.flush()


class ReproHTTPServer(ThreadingHTTPServer):
    """:class:`ThreadingHTTPServer` bound to one :class:`ReproService`."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        service: ReproService,
        access_log_path: Union[str, Path, None] = None,
    ) -> None:
        super().__init__(address, _ServiceHandler)
        self.service = service
        self.access_log = (
            open(access_log_path, "a", encoding="utf-8")
            if access_log_path is not None
            else None
        )

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def server_close(self) -> None:
        super().server_close()
        if self.access_log is not None:
            self.access_log.close()
            self.access_log = None


class AsyncHTTPServer:
    """Asyncio transport over one :class:`ReproService` — the tail path.

    Same lifecycle contract as :class:`ReproHTTPServer` (the tests and
    the CLI treat them interchangeably): the socket binds eagerly in
    the constructor so ``port=0`` resolves before ``serve_forever()``
    runs, ``serve_forever()`` blocks until ``shutdown()`` is called
    from another thread, and ``server_close()`` releases the socket,
    the dispatch pool and the access log.

    Why asyncio when solver work is lock-serialised anyway: keep-alive
    clients (every :class:`~repro.service.client.ServiceClient` since
    PR 9) hold their connection open between requests.  Under the
    threading transport each of those idle connections pins an OS
    thread; here it costs one parked coroutine, and actual dispatch
    work runs on a bounded :class:`~concurrent.futures.ThreadPoolExecutor`
    sized just above the service's ``queue_depth`` — so memory stays
    flat no matter how many clients connect, and the queue gate (429 +
    ``Retry-After``) is what says no, not thread exhaustion.
    """

    def __init__(
        self,
        address: tuple[str, int],
        service: ReproService,
        access_log_path: Union[str, Path, None] = None,
        *,
        pool_workers: Optional[int] = None,
        idle_timeout: float = 60.0,
    ) -> None:
        self.service = service
        self._socket = socket.create_server(address, backlog=128)
        self._socket.setblocking(False)
        self.server_address = self._socket.getsockname()
        self.access_log = (
            open(access_log_path, "a", encoding="utf-8")
            if access_log_path is not None
            else None
        )
        if pool_workers is None:
            depth = service.config.queue_depth or 8
            # Headroom above the queue gate so /healthz + /workers still
            # get a thread while `queue_depth` solver requests sit in
            # the gate (429s themselves are answered without dispatch).
            pool_workers = max(4, min(depth + 4, 64))
        self._pool = ThreadPoolExecutor(
            max_workers=pool_workers, thread_name_prefix="repro-dispatch"
        )
        self.idle_timeout = float(idle_timeout)
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._stop_event: Optional[asyncio.Event] = None
        self._shutdown_requested = threading.Event()
        self._started = threading.Event()
        self._stopped = threading.Event()

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    # -- lifecycle -----------------------------------------------------

    def serve_forever(self, poll_interval: float = 0.5) -> None:  # noqa: ARG002
        """Run the event loop until :meth:`shutdown` (thread-safe) fires."""
        asyncio.run(self._serve())

    async def _serve(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        self._started.set()
        try:
            if self._shutdown_requested.is_set():
                return  # shut down before the loop even started
            try:
                server = await asyncio.start_server(
                    self._handle_connection, sock=self._socket
                )
            except OSError:
                # ``server_close`` raced us and closed the listening
                # socket before the loop attached to it; nothing to do.
                if self._shutdown_requested.is_set():
                    return
                raise
            try:
                await self._stop_event.wait()
            finally:
                server.close()
                await server.wait_closed()
        finally:
            self._loop = None
            self._stopped.set()

    def shutdown(self) -> None:
        """Stop ``serve_forever`` from another thread (idempotent)."""
        self._shutdown_requested.set()
        loop, stop = self._loop, self._stop_event
        if loop is not None and stop is not None:
            try:
                loop.call_soon_threadsafe(stop.set)
            except RuntimeError:
                pass  # the loop already exited between the check and the call
        if self._started.is_set():
            self._stopped.wait(timeout=10.0)

    def server_close(self) -> None:
        self._pool.shutdown(wait=False, cancel_futures=True)
        try:
            self._socket.close()
        except OSError:
            pass
        if self.access_log is not None:
            self.access_log.close()
            self.access_log = None

    # -- one connection ------------------------------------------------

    async def _handle_connection(self, reader, writer) -> None:
        try:
            while await self._handle_one(reader, writer):
                pass
        except asyncio.CancelledError:
            pass  # loop shutting down mid-request: just drop the connection
        except (
            OSError,
            asyncio.TimeoutError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass  # peer gone or idle-timed-out: just drop the connection
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except (OSError, asyncio.CancelledError):
                pass

    async def _handle_one(self, reader, writer) -> bool:
        """Read one request, dispatch off-loop, write one response.

        Returns True to keep the connection for another request.
        """
        request_line = await asyncio.wait_for(
            reader.readline(), timeout=self.idle_timeout
        )
        if not request_line.strip():
            return False  # EOF (or a bare CRLF) between requests
        try:
            method, target, version = request_line.decode("latin-1").split()
        except ValueError:
            exc = ServiceError("malformed HTTP request line", status=400)
            await self._write_response(
                writer, 400, error_body(exc, 400), False, "<malformed>"
            )
            return False
        headers = {}
        while True:
            line = await asyncio.wait_for(reader.readline(), timeout=10.0)
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            length = 0
        keep = (
            version == "HTTP/1.1"
            and headers.get("connection", "").lower() != "close"
        )
        request_repr = f"{method} {target} {version}"
        limit = self.service.config.max_body_bytes
        if limit is not None and length > limit:
            # Refuse before buffering a byte; the unread body makes the
            # connection unusable, so close it (mirrors the threading
            # transport's behaviour, pinned by the failure-mode tests).
            exc = ServiceError(
                f"request body of {length} bytes is over this "
                f"service's limit of {limit}",
                status=413,
            )
            await self._write_response(
                writer, 413, error_body(exc, 413), False, request_repr
            )
            return False
        body = await reader.readexactly(length) if length > 0 else b""
        status, payload = await asyncio.get_running_loop().run_in_executor(
            self._pool, self.service.dispatch, method, target, body
        )
        await self._write_response(writer, status, payload, keep, request_repr)
        return keep

    async def _write_response(
        self, writer, status: int, payload: dict, keep: bool, request_repr: str
    ) -> None:
        blob = json.dumps(payload, default=json_default).encode("utf-8")
        reason = http.client.responses.get(status, "")
        head = [
            f"HTTP/1.1 {status} {reason}".rstrip(),
            "Content-Type: application/json",
            f"Content-Length: {len(blob)}",
            f"Connection: {'keep-alive' if keep else 'close'}",
        ]
        retry_after = _retry_after_header(payload)
        if retry_after is not None:
            head.append(f"Retry-After: {retry_after}")
        writer.write(("\r\n".join(head) + "\r\n\r\n").encode("latin-1") + blob)
        await writer.drain()
        self._log(writer, request_repr, status)

    def _log(self, writer, request_repr: str, status: int) -> None:
        peer = writer.get_extra_info("peername")
        host = peer[0] if peer else "-"
        stamp = time.strftime("%d/%b/%Y %H:%M:%S")
        line = '%s - - [%s] "%s" %d\n' % (host, stamp, request_repr, status)
        stream = self.access_log or sys.stderr
        try:
            stream.write(line)
            stream.flush()
        except ValueError:
            pass  # the log was closed mid-shutdown


def create_server(
    host: str = "127.0.0.1",
    port: int = 8000,
    *,
    registry: Optional[SolverRegistry] = None,
    cache: Optional[ResultCache] = None,
    config: Optional[ServiceConfig] = None,
    access_log: Union[str, Path, None] = None,
    warm_start: tuple = (),
    server: str = "async",
    pool_workers: Optional[int] = None,
) -> Union["AsyncHTTPServer", ReproHTTPServer]:
    """Build a ready-to-serve HTTP server (``port=0`` picks a free port).

    ``server`` selects the transport: ``"async"`` (default — the
    :class:`AsyncHTTPServer` tail-latency path) or ``"threading"``
    (the historical thread-per-connection server).  The caller owns
    the lifecycle: ``serve_forever()`` to block (or run it in a
    thread, as the tests do) and ``server_close()`` to release the
    socket and the access log.  ``warm_start`` paths are merged into
    the shared cache before the socket accepts its first request.
    """
    service = ReproService(
        registry=registry, cache=cache, config=config, warm_start=warm_start
    )
    if server == "threading":
        return ReproHTTPServer((host, port), service, access_log_path=access_log)
    if server != "async":
        raise ConfigError(
            f"server must be 'async' or 'threading', got {server!r}"
        )
    return AsyncHTTPServer(
        (host, port), service, access_log_path=access_log,
        pool_workers=pool_workers,
    )


__all__ = [
    "AsyncHTTPServer",
    "ReproHTTPServer",
    "ReproService",
    "ServiceConfig",
    "create_server",
]
