"""A small typed client for the repro service (stdlib ``http.client``).

Used by the test suite, the ``python -m repro client`` CLI and the CI
service-smoke job; also the reference implementation for anyone talking
to the service from another process::

    from repro.service import ServiceClient
    from repro.graphs import planted_cut_graph

    client = ServiceClient("http://127.0.0.1:8000")
    client.wait_until_ready()
    graph = planted_cut_graph((12, 12), cut_value=3, seed=7)
    result = client.solve(graph)             # -> repro.CutResult
    assert result.matches(graph)             # witness verifies locally

Transport: one persistent keep-alive connection **per thread** (the
remote backend posts shards from many threads at once), so repeated
small requests stop paying TCP connection setup — which dominated
small-graph p99 latency under the old one-``urlopen``-per-request
transport.  A reused connection the server has since closed is retried
once on a fresh one; ``keep_alive=False`` restores the historical
connection-per-request behaviour (the P3 benchmark measures the gap).

Every non-2xx response raises :class:`~repro.errors.ServiceError` with
the HTTP status and the decoded structured error body in ``payload``
(backpressure 429s carry ``retry_after``); an unreachable service
raises it with ``status=0``.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from typing import Any, Iterable, Optional, Sequence, Union
from urllib.parse import urlsplit

from ..api.result import CutResult
from ..errors import AlgorithmError, ServiceError
from ..exec.task import SolveTask
from ..graphs.graph import WeightedGraph
from ..graphs.io import graph_to_json
from .protocol import cut_result_from_json

#: Accepted graph arguments: a live graph, edge-list text, an edge
#: array, or the JSON form — the latter three pass through verbatim.
GraphPayload = Union[WeightedGraph, str, list, dict]


def _graph_payload(graph: GraphPayload):
    if isinstance(graph, WeightedGraph):
        return graph_to_json(graph)
    return graph


class ServiceClient:
    """JSON-over-HTTP client bound to one service base URL.

    ``keep_alive=True`` (default) holds one persistent connection per
    calling thread and reuses it across requests; ``False`` opens a
    fresh connection per request, the pre-PR 9 behaviour.
    """

    def __init__(
        self, base_url: str, timeout: float = 60.0, *, keep_alive: bool = True
    ) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout
        self.keep_alive = keep_alive
        split = urlsplit(self.base_url)
        self._scheme = split.scheme or "http"
        try:
            self._host, self._port = split.hostname, split.port
        except ValueError:
            self._host = self._port = None
        self._prefix = split.path.rstrip("/")
        self._local = threading.local()

    # -- transport -----------------------------------------------------

    def _connection(self) -> tuple:
        """This thread's live connection, or a freshly opened one.

        Returns ``(connection, fresh)``; connect-time failures raise
        the ``status=0`` "unreachable" error (the failover cue the
        remote backend keys on).
        """
        conn = getattr(self._local, "conn", None)
        if conn is not None:
            return conn, False
        if self._host is None or self._scheme not in ("http", "https"):
            raise ServiceError(
                f"service at {self.base_url} unreachable: not a valid "
                "http(s) URL",
                status=0,
            )
        factory = (
            http.client.HTTPSConnection
            if self._scheme == "https"
            else http.client.HTTPConnection
        )
        conn = factory(self._host, self._port, timeout=self.timeout)
        try:
            conn.connect()
        except OSError as exc:
            conn.close()
            raise ServiceError(
                f"service at {self.base_url} unreachable: {exc}", status=0
            ) from None
        self._local.conn = conn
        return conn, True

    def _drop(self) -> None:
        conn = getattr(self._local, "conn", None)
        self._local.conn = None
        if conn is not None:
            try:
                conn.close()
            except OSError:
                pass

    def close(self) -> None:
        """Close the calling thread's persistent connection, if any."""
        self._drop()

    def _request(self, method: str, path: str, payload: Optional[dict] = None):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if not self.keep_alive:
            headers["Connection"] = "close"
        for first_try in (True, False):
            conn, fresh = self._connection()
            try:
                conn.request(
                    method, (self._prefix + path) or "/", body=data, headers=headers
                )
                response = conn.getresponse()
                body = response.read()
                will_close = response.will_close
            except (http.client.HTTPException, OSError) as exc:
                self._drop()
                if not fresh and first_try:
                    # The server closed an idle keep-alive connection
                    # between requests; retry once on a fresh one.  A
                    # *fresh* connection dying mid-exchange is a real
                    # failure and is never retried.
                    continue
                raise ServiceError(
                    f"service at {self.base_url} dropped the connection: "
                    f"{type(exc).__name__}: {exc}",
                    status=0,
                ) from None
            break
        if will_close or not self.keep_alive:
            self._drop()
        status = response.status
        if 200 <= status < 300:
            try:
                return json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                # A 2xx with a non-JSON body is a broken (or dying,
                # or non-repro) server, not a client bug: surface it
                # as the typed error with a body snippet, so callers
                # handling ServiceError cover this path too.
                snippet = body[:120].decode("utf-8", "replace")
                raise ServiceError(
                    f"{method} {path} -> {status}: response is "
                    f"not valid JSON: {snippet!r}",
                    status=status,
                ) from None
        try:
            decoded = json.loads(body.decode("utf-8"))
        except (UnicodeDecodeError, ValueError):
            decoded = None
        if not isinstance(decoded, dict):
            # A proxy (or a non-repro server) may answer with
            # non-JSON or a JSON array/scalar; still raise the
            # typed error, with the raw body as the message.
            decoded = {"error": {"message": body.decode("utf-8", "replace")}}
        error = decoded.get("error")
        if not isinstance(error, dict):
            error = {"message": repr(error)}
        message = error.get("message", response.reason)
        retry_after = error.get("retry_after")
        if isinstance(retry_after, bool) or not isinstance(
            retry_after, (int, float)
        ):
            retry_after = None
        raise ServiceError(
            f"{method} {path} -> {status}: {message}",
            status=status,
            payload=decoded,
            retry_after=retry_after,
        )

    # -- endpoints -----------------------------------------------------

    def health(self) -> dict:
        """``GET /healthz`` — version, uptime, cache counters."""
        return self._request("GET", "/healthz")

    def solvers(self) -> list[dict]:
        """``GET /solvers`` — the registry with capability metadata."""
        return self._request("GET", "/solvers")["solvers"]

    def workers(self) -> list[str]:
        """``GET /workers`` — live registered workers (pool managers)."""
        return self._request("GET", "/workers")["workers"]

    def register(self, url: str, *, leaving: bool = False) -> dict:
        """``POST /register`` — announce (or withdraw) a worker URL.

        Doubles as the heartbeat: re-post every few seconds to stay
        listed past the manager's ``worker_ttl``.
        """
        return self._request("POST", "/register", {"url": url, "leaving": leaving})

    def solve(
        self,
        graph: GraphPayload,
        solver: str = "auto",
        *,
        epsilon: Optional[float] = None,
        mode: str = "reference",
        seed: int = 0,
        budget: Optional[int] = None,
        **options: Any,
    ) -> CutResult:
        """``POST /solve`` — remote :func:`repro.api.solve`.

        Same signature and semantics as the façade call; the returned
        :class:`CutResult` additionally carries the server cache's
        outcome under ``extras["cache"]``.
        """
        payload = {
            "graph": _graph_payload(graph),
            "solver": solver,
            "epsilon": epsilon,
            "mode": mode,
            "seed": seed,
            "budget": budget,
            "options": options,
        }
        response = self._request("POST", "/solve", payload)
        return cut_result_from_json(response["result"])

    def solve_batch(
        self,
        graphs: Iterable[GraphPayload],
        solver: str = "auto",
        *,
        epsilon: Optional[float] = None,
        mode: str = "reference",
        seed: int = 0,
        budget: Optional[int] = None,
        backend: Optional[str] = None,
        **options: Any,
    ) -> list[CutResult]:
        """``POST /solve_batch`` — remote :func:`repro.api.solve_batch`.

        ``backend`` names the *server-side* execution backend for the
        fan-out (``serial``/``thread``/``process``); ``None`` uses the
        server's configured default.
        """
        payload = {
            "graphs": [_graph_payload(graph) for graph in graphs],
            "solver": solver,
            "epsilon": epsilon,
            "mode": mode,
            "seed": seed,
            "budget": budget,
            "backend": backend,
            "options": options,
        }
        response = self._request("POST", "/solve_batch", payload)
        return [cut_result_from_json(result) for result in response["results"]]

    # -- batch-slice helpers (the remote backend's wire form) ----------

    def solve_task(self, task: SolveTask) -> CutResult:
        """``POST /solve`` one frozen :class:`SolveTask` verbatim.

        The task's seed, resolved solver name and options cross the
        wire untouched, so the worker runs the identical
        :func:`repro.exec.task.run_task` path a local backend would —
        the per-task fallback the ``remote`` backend uses when a shard
        cannot be posted wholesale.
        """
        return self.solve(
            task.graph,
            task.solver,
            epsilon=task.epsilon,
            mode=task.mode,
            seed=task.seed,
            budget=task.budget,
            **dict(task.options),
        )

    def solve_tasks(self, tasks: Sequence[SolveTask]) -> list[CutResult]:
        """``POST /solve_batch`` a slice of frozen tasks in one request.

        The tasks' per-task seeds and solver names travel as the
        protocol's ``seeds`` / ``solvers`` lists, so the worker
        reproduces each task exactly instead of re-deriving seeds as
        ``seed + index`` — a shard of a larger batch keeps its original
        frozen seeds.  Epsilon, mode, budget and options must be
        uniform across the slice (they are for any slice built from
        one façade call); mixed slices raise
        :class:`~repro.errors.AlgorithmError` before any request is
        sent.
        """
        if not tasks:
            return []
        head = tasks[0]
        shared = (head.epsilon, head.mode, head.budget, head.options)
        for task in tasks[1:]:
            if (task.epsilon, task.mode, task.budget, task.options) != shared:
                raise AlgorithmError(
                    "solve_tasks needs uniform epsilon/mode/budget/options "
                    "across the slice; split mixed task lists per knob set"
                )
        payload = {
            "graphs": [_graph_payload(task.graph) for task in tasks],
            "solvers": [task.solver for task in tasks],
            "seeds": [task.seed for task in tasks],
            "epsilon": head.epsilon,
            "mode": head.mode,
            "budget": head.budget,
            "options": dict(head.options),
        }
        response = self._request("POST", "/solve_batch", payload)
        return [cut_result_from_json(result) for result in response["results"]]

    # -- dynamic-graph sessions ----------------------------------------

    def mutate(
        self,
        *,
        session: Optional[str] = None,
        open: Optional[dict] = None,  # noqa: A002 - protocol field name
        ops: Sequence = (),
        undo: int = 0,
        solve: bool = False,
        close: bool = False,
    ) -> dict:
        """``POST /mutate`` — drive one dynamic-graph session.

        Arguments mirror the protocol envelope (see
        :func:`repro.service.protocol.parse_mutate_request`); ``ops``
        entries may be :class:`~repro.dynamic.ops.MutationOp` objects
        or raw JSON dicts.  Returns the decoded response with
        ``result`` (when ``solve=True``) upgraded to a
        :class:`CutResult`.
        """
        payload: dict = {
            "ops": [
                op if isinstance(op, dict) else op.to_json() for op in ops
            ],
            "undo": undo,
            "solve": solve,
            "close": close,
        }
        if open is not None:
            open = dict(open)
            if "graph" in open:
                open["graph"] = _graph_payload(open["graph"])
            payload["open"] = open
        if session is not None:
            payload["session"] = session
        response = self._request("POST", "/mutate", payload)
        if response.get("result") is not None:
            response["result"] = cut_result_from_json(response["result"])
        return response

    def open_session(
        self,
        graph: GraphPayload,
        solver: str = "auto",
        *,
        epsilon: Optional[float] = None,
        mode: str = "reference",
        seed: int = 0,
        patch_budget: Optional[int] = None,
    ) -> "RemoteDynamicSession":
        """Open a server-side dynamic session; returns the typed handle."""
        response = self.mutate(
            open={
                "graph": graph,
                "solver": solver,
                "epsilon": epsilon,
                "mode": mode,
                "seed": seed,
                "patch_budget": patch_budget,
            }
        )
        return RemoteDynamicSession(self, response["session"], response)

    # -- convenience ---------------------------------------------------

    def wait_until_ready(self, timeout: float = 10.0, interval: float = 0.1) -> dict:
        """Poll ``/healthz`` until the service answers (startup races).

        Returns the first healthy payload; raises
        :class:`ServiceError` when ``timeout`` elapses first.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except ServiceError as exc:
                if exc.status != 0 or time.monotonic() >= deadline:
                    raise
            time.sleep(interval)


class RemoteDynamicSession:
    """Typed handle to one server-side dynamic-graph session.

    The remote mirror of :class:`~repro.dynamic.session.DynamicSession`:
    ``apply``/``undo`` return the server's per-op acknowledgement
    (with the resulting graph hash), ``solve`` a :class:`CutResult`
    whose ``extras`` carry certificate/cache provenance.  Batched
    round trips go through :meth:`step` (one ``/mutate`` envelope).
    """

    def __init__(
        self, client: ServiceClient, session_id: str, opened: dict
    ) -> None:
        self.client = client
        self.session_id = session_id
        self.last_response = opened
        self.closed = False

    @property
    def graph_hash(self) -> Optional[str]:
        """The server's content hash after the last round trip."""
        return self.last_response.get("graph_hash")

    def step(
        self,
        ops: Sequence = (),
        *,
        undo: int = 0,
        solve: bool = False,
        close: bool = False,
    ) -> dict:
        """One ``/mutate`` round trip (undo, then ops, then solve)."""
        response = self.client.mutate(
            session=self.session_id, ops=ops, undo=undo, solve=solve,
            close=close,
        )
        self.last_response = response
        self.closed = response.get("closed", False)
        return response

    def apply(self, op) -> dict:
        """Apply one op; returns its acknowledgement record."""
        return self.step([op])["acks"][0]

    def undo(self) -> dict:
        """Revert the most recent op; returns its acknowledgement."""
        return self.step(undo=1)["acks"][0]

    def solve(self) -> CutResult:
        """Solve the current graph (certificate/cache-served when possible)."""
        return self.step(solve=True)["result"]

    def stats(self) -> dict:
        """Server-side session counters from the last round trip."""
        return self.last_response.get("stats", {})

    def close(self) -> dict:
        """Drop the server-side session."""
        return self.step(close=True)


__all__ = ["GraphPayload", "RemoteDynamicSession", "ServiceClient"]
