"""A small typed client for the repro service (stdlib ``urllib`` only).

Used by the test suite, the ``python -m repro client`` CLI and the CI
service-smoke job; also the reference implementation for anyone talking
to the service from another process::

    from repro.service import ServiceClient
    from repro.graphs import planted_cut_graph

    client = ServiceClient("http://127.0.0.1:8000")
    client.wait_until_ready()
    graph = planted_cut_graph((12, 12), cut_value=3, seed=7)
    result = client.solve(graph)             # -> repro.CutResult
    assert result.matches(graph)             # witness verifies locally

Every non-2xx response raises :class:`~repro.errors.ServiceError` with
the HTTP status and the decoded structured error body in ``payload``;
an unreachable service raises it with ``status=0``.
"""

from __future__ import annotations

import http.client
import json
import time
import urllib.error
import urllib.request
from typing import Any, Iterable, Optional, Sequence, Union

from ..api.result import CutResult
from ..errors import AlgorithmError, ServiceError
from ..exec.task import SolveTask
from ..graphs.graph import WeightedGraph
from ..graphs.io import graph_to_json
from .protocol import cut_result_from_json

#: Accepted graph arguments: a live graph, edge-list text, an edge
#: array, or the JSON form — the latter three pass through verbatim.
GraphPayload = Union[WeightedGraph, str, list, dict]


def _graph_payload(graph: GraphPayload):
    if isinstance(graph, WeightedGraph):
        return graph_to_json(graph)
    return graph


class ServiceClient:
    """JSON-over-HTTP client bound to one service base URL."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _request(self, method: str, path: str, payload: Optional[dict] = None):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read()
                try:
                    return json.loads(body.decode("utf-8"))
                except (UnicodeDecodeError, ValueError):
                    # A 2xx with a non-JSON body is a broken (or dying,
                    # or non-repro) server, not a client bug: surface it
                    # as the typed error with a body snippet, so callers
                    # handling ServiceError cover this path too.
                    snippet = body[:120].decode("utf-8", "replace")
                    raise ServiceError(
                        f"{method} {path} -> {response.status}: response is "
                        f"not valid JSON: {snippet!r}",
                        status=response.status,
                    ) from None
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                decoded = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                decoded = None
            if not isinstance(decoded, dict):
                # A proxy (or a non-repro server) may answer with
                # non-JSON or a JSON array/scalar; still raise the
                # typed error, with the raw body as the message.
                decoded = {"error": {"message": body.decode("utf-8", "replace")}}
            error = decoded.get("error")
            if not isinstance(error, dict):
                error = {"message": repr(error)}
            message = error.get("message", exc.reason)
            raise ServiceError(
                f"{method} {path} -> {exc.code}: {message}",
                status=exc.code,
                payload=decoded,
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"service at {self.base_url} unreachable: {exc.reason}", status=0
            ) from None
        except (http.client.HTTPException, ConnectionError, TimeoutError) as exc:
            # urllib only wraps OSErrors raised while *connecting*; a
            # server dying mid-exchange surfaces as RemoteDisconnected /
            # BadStatusLine (HTTPException) or a reset on the socket.
            # Same meaning for callers: the worker is gone.
            raise ServiceError(
                f"service at {self.base_url} dropped the connection: "
                f"{type(exc).__name__}: {exc}",
                status=0,
            ) from None

    # -- endpoints -----------------------------------------------------

    def health(self) -> dict:
        """``GET /healthz`` — version, uptime, cache counters."""
        return self._request("GET", "/healthz")

    def solvers(self) -> list[dict]:
        """``GET /solvers`` — the registry with capability metadata."""
        return self._request("GET", "/solvers")["solvers"]

    def solve(
        self,
        graph: GraphPayload,
        solver: str = "auto",
        *,
        epsilon: Optional[float] = None,
        mode: str = "reference",
        seed: int = 0,
        budget: Optional[int] = None,
        **options: Any,
    ) -> CutResult:
        """``POST /solve`` — remote :func:`repro.api.solve`.

        Same signature and semantics as the façade call; the returned
        :class:`CutResult` additionally carries the server cache's
        outcome under ``extras["cache"]``.
        """
        payload = {
            "graph": _graph_payload(graph),
            "solver": solver,
            "epsilon": epsilon,
            "mode": mode,
            "seed": seed,
            "budget": budget,
            "options": options,
        }
        response = self._request("POST", "/solve", payload)
        return cut_result_from_json(response["result"])

    def solve_batch(
        self,
        graphs: Iterable[GraphPayload],
        solver: str = "auto",
        *,
        epsilon: Optional[float] = None,
        mode: str = "reference",
        seed: int = 0,
        budget: Optional[int] = None,
        backend: Optional[str] = None,
        **options: Any,
    ) -> list[CutResult]:
        """``POST /solve_batch`` — remote :func:`repro.api.solve_batch`.

        ``backend`` names the *server-side* execution backend for the
        fan-out (``serial``/``thread``/``process``); ``None`` uses the
        server's configured default.
        """
        payload = {
            "graphs": [_graph_payload(graph) for graph in graphs],
            "solver": solver,
            "epsilon": epsilon,
            "mode": mode,
            "seed": seed,
            "budget": budget,
            "backend": backend,
            "options": options,
        }
        response = self._request("POST", "/solve_batch", payload)
        return [cut_result_from_json(result) for result in response["results"]]

    # -- batch-slice helpers (the remote backend's wire form) ----------

    def solve_task(self, task: SolveTask) -> CutResult:
        """``POST /solve`` one frozen :class:`SolveTask` verbatim.

        The task's seed, resolved solver name and options cross the
        wire untouched, so the worker runs the identical
        :func:`repro.exec.task.run_task` path a local backend would —
        the per-task fallback the ``remote`` backend uses when a shard
        cannot be posted wholesale.
        """
        return self.solve(
            task.graph,
            task.solver,
            epsilon=task.epsilon,
            mode=task.mode,
            seed=task.seed,
            budget=task.budget,
            **dict(task.options),
        )

    def solve_tasks(self, tasks: Sequence[SolveTask]) -> list[CutResult]:
        """``POST /solve_batch`` a slice of frozen tasks in one request.

        The tasks' per-task seeds and solver names travel as the
        protocol's ``seeds`` / ``solvers`` lists, so the worker
        reproduces each task exactly instead of re-deriving seeds as
        ``seed + index`` — a shard of a larger batch keeps its original
        frozen seeds.  Epsilon, mode, budget and options must be
        uniform across the slice (they are for any slice built from
        one façade call); mixed slices raise
        :class:`~repro.errors.AlgorithmError` before any request is
        sent.
        """
        if not tasks:
            return []
        head = tasks[0]
        shared = (head.epsilon, head.mode, head.budget, head.options)
        for task in tasks[1:]:
            if (task.epsilon, task.mode, task.budget, task.options) != shared:
                raise AlgorithmError(
                    "solve_tasks needs uniform epsilon/mode/budget/options "
                    "across the slice; split mixed task lists per knob set"
                )
        payload = {
            "graphs": [_graph_payload(task.graph) for task in tasks],
            "solvers": [task.solver for task in tasks],
            "seeds": [task.seed for task in tasks],
            "epsilon": head.epsilon,
            "mode": head.mode,
            "budget": head.budget,
            "options": dict(head.options),
        }
        response = self._request("POST", "/solve_batch", payload)
        return [cut_result_from_json(result) for result in response["results"]]

    # -- dynamic-graph sessions ----------------------------------------

    def mutate(
        self,
        *,
        session: Optional[str] = None,
        open: Optional[dict] = None,  # noqa: A002 - protocol field name
        ops: Sequence = (),
        undo: int = 0,
        solve: bool = False,
        close: bool = False,
    ) -> dict:
        """``POST /mutate`` — drive one dynamic-graph session.

        Arguments mirror the protocol envelope (see
        :func:`repro.service.protocol.parse_mutate_request`); ``ops``
        entries may be :class:`~repro.dynamic.ops.MutationOp` objects
        or raw JSON dicts.  Returns the decoded response with
        ``result`` (when ``solve=True``) upgraded to a
        :class:`CutResult`.
        """
        payload: dict = {
            "ops": [
                op if isinstance(op, dict) else op.to_json() for op in ops
            ],
            "undo": undo,
            "solve": solve,
            "close": close,
        }
        if open is not None:
            open = dict(open)
            if "graph" in open:
                open["graph"] = _graph_payload(open["graph"])
            payload["open"] = open
        if session is not None:
            payload["session"] = session
        response = self._request("POST", "/mutate", payload)
        if response.get("result") is not None:
            response["result"] = cut_result_from_json(response["result"])
        return response

    def open_session(
        self,
        graph: GraphPayload,
        solver: str = "auto",
        *,
        epsilon: Optional[float] = None,
        mode: str = "reference",
        seed: int = 0,
        patch_budget: Optional[int] = None,
    ) -> "RemoteDynamicSession":
        """Open a server-side dynamic session; returns the typed handle."""
        response = self.mutate(
            open={
                "graph": graph,
                "solver": solver,
                "epsilon": epsilon,
                "mode": mode,
                "seed": seed,
                "patch_budget": patch_budget,
            }
        )
        return RemoteDynamicSession(self, response["session"], response)

    # -- convenience ---------------------------------------------------

    def wait_until_ready(self, timeout: float = 10.0, interval: float = 0.1) -> dict:
        """Poll ``/healthz`` until the service answers (startup races).

        Returns the first healthy payload; raises
        :class:`ServiceError` when ``timeout`` elapses first.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except ServiceError as exc:
                if exc.status != 0 or time.monotonic() >= deadline:
                    raise
            time.sleep(interval)


class RemoteDynamicSession:
    """Typed handle to one server-side dynamic-graph session.

    The remote mirror of :class:`~repro.dynamic.session.DynamicSession`:
    ``apply``/``undo`` return the server's per-op acknowledgement
    (with the resulting graph hash), ``solve`` a :class:`CutResult`
    whose ``extras`` carry certificate/cache provenance.  Batched
    round trips go through :meth:`step` (one ``/mutate`` envelope).
    """

    def __init__(
        self, client: ServiceClient, session_id: str, opened: dict
    ) -> None:
        self.client = client
        self.session_id = session_id
        self.last_response = opened
        self.closed = False

    @property
    def graph_hash(self) -> Optional[str]:
        """The server's content hash after the last round trip."""
        return self.last_response.get("graph_hash")

    def step(
        self,
        ops: Sequence = (),
        *,
        undo: int = 0,
        solve: bool = False,
        close: bool = False,
    ) -> dict:
        """One ``/mutate`` round trip (undo, then ops, then solve)."""
        response = self.client.mutate(
            session=self.session_id, ops=ops, undo=undo, solve=solve,
            close=close,
        )
        self.last_response = response
        self.closed = response.get("closed", False)
        return response

    def apply(self, op) -> dict:
        """Apply one op; returns its acknowledgement record."""
        return self.step([op])["acks"][0]

    def undo(self) -> dict:
        """Revert the most recent op; returns its acknowledgement."""
        return self.step(undo=1)["acks"][0]

    def solve(self) -> CutResult:
        """Solve the current graph (certificate/cache-served when possible)."""
        return self.step(solve=True)["result"]

    def stats(self) -> dict:
        """Server-side session counters from the last round trip."""
        return self.last_response.get("stats", {})

    def close(self) -> dict:
        """Drop the server-side session."""
        return self.step(close=True)


__all__ = ["GraphPayload", "RemoteDynamicSession", "ServiceClient"]
