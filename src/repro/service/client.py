"""A small typed client for the repro service (stdlib ``urllib`` only).

Used by the test suite, the ``python -m repro client`` CLI and the CI
service-smoke job; also the reference implementation for anyone talking
to the service from another process::

    from repro.service import ServiceClient
    from repro.graphs import planted_cut_graph

    client = ServiceClient("http://127.0.0.1:8000")
    client.wait_until_ready()
    graph = planted_cut_graph((12, 12), cut_value=3, seed=7)
    result = client.solve(graph)             # -> repro.CutResult
    assert result.matches(graph)             # witness verifies locally

Every non-2xx response raises :class:`~repro.errors.ServiceError` with
the HTTP status and the decoded structured error body in ``payload``;
an unreachable service raises it with ``status=0``.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Any, Iterable, Optional, Union

from ..api.result import CutResult
from ..errors import ServiceError
from ..graphs.graph import WeightedGraph
from ..graphs.io import graph_to_json
from .protocol import cut_result_from_json

#: Accepted graph arguments: a live graph, edge-list text, an edge
#: array, or the JSON form — the latter three pass through verbatim.
GraphPayload = Union[WeightedGraph, str, list, dict]


def _graph_payload(graph: GraphPayload):
    if isinstance(graph, WeightedGraph):
        return graph_to_json(graph)
    return graph


class ServiceClient:
    """JSON-over-HTTP client bound to one service base URL."""

    def __init__(self, base_url: str, timeout: float = 60.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = timeout

    # -- transport -----------------------------------------------------

    def _request(self, method: str, path: str, payload: Optional[dict] = None):
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                return json.loads(response.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            body = exc.read()
            try:
                decoded = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, ValueError):
                decoded = None
            if not isinstance(decoded, dict):
                # A proxy (or a non-repro server) may answer with
                # non-JSON or a JSON array/scalar; still raise the
                # typed error, with the raw body as the message.
                decoded = {"error": {"message": body.decode("utf-8", "replace")}}
            error = decoded.get("error")
            if not isinstance(error, dict):
                error = {"message": repr(error)}
            message = error.get("message", exc.reason)
            raise ServiceError(
                f"{method} {path} -> {exc.code}: {message}",
                status=exc.code,
                payload=decoded,
            ) from None
        except urllib.error.URLError as exc:
            raise ServiceError(
                f"service at {self.base_url} unreachable: {exc.reason}", status=0
            ) from None

    # -- endpoints -----------------------------------------------------

    def health(self) -> dict:
        """``GET /healthz`` — version, uptime, cache counters."""
        return self._request("GET", "/healthz")

    def solvers(self) -> list[dict]:
        """``GET /solvers`` — the registry with capability metadata."""
        return self._request("GET", "/solvers")["solvers"]

    def solve(
        self,
        graph: GraphPayload,
        solver: str = "auto",
        *,
        epsilon: Optional[float] = None,
        mode: str = "reference",
        seed: int = 0,
        budget: Optional[int] = None,
        **options: Any,
    ) -> CutResult:
        """``POST /solve`` — remote :func:`repro.api.solve`.

        Same signature and semantics as the façade call; the returned
        :class:`CutResult` additionally carries the server cache's
        outcome under ``extras["cache"]``.
        """
        payload = {
            "graph": _graph_payload(graph),
            "solver": solver,
            "epsilon": epsilon,
            "mode": mode,
            "seed": seed,
            "budget": budget,
            "options": options,
        }
        response = self._request("POST", "/solve", payload)
        return cut_result_from_json(response["result"])

    def solve_batch(
        self,
        graphs: Iterable[GraphPayload],
        solver: str = "auto",
        *,
        epsilon: Optional[float] = None,
        mode: str = "reference",
        seed: int = 0,
        budget: Optional[int] = None,
        backend: Optional[str] = None,
        **options: Any,
    ) -> list[CutResult]:
        """``POST /solve_batch`` — remote :func:`repro.api.solve_batch`.

        ``backend`` names the *server-side* execution backend for the
        fan-out (``serial``/``thread``/``process``); ``None`` uses the
        server's configured default.
        """
        payload = {
            "graphs": [_graph_payload(graph) for graph in graphs],
            "solver": solver,
            "epsilon": epsilon,
            "mode": mode,
            "seed": seed,
            "budget": budget,
            "backend": backend,
            "options": options,
        }
        response = self._request("POST", "/solve_batch", payload)
        return [cut_result_from_json(result) for result in response["results"]]

    # -- convenience ---------------------------------------------------

    def wait_until_ready(self, timeout: float = 10.0, interval: float = 0.1) -> dict:
        """Poll ``/healthz`` until the service answers (startup races).

        Returns the first healthy payload; raises
        :class:`ServiceError` when ``timeout`` elapses first.
        """
        deadline = time.monotonic() + timeout
        while True:
            try:
                return self.health()
            except ServiceError as exc:
                if exc.status != 0 or time.monotonic() >= deadline:
                    raise
            time.sleep(interval)


__all__ = ["GraphPayload", "ServiceClient"]
