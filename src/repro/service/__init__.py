"""Service layer: the façade served over JSON-per-request HTTP.

The ROADMAP's "service layer over the façade" — a stdlib-only
request/response server where batching and sharding land without
touching any solver:

* :mod:`~repro.service.protocol` — the wire format (graph payloads in
  three forms, :class:`~repro.api.result.CutResult` JSON with the
  cache's tagged extras encoding, structured error bodies);
* :mod:`~repro.service.server` — :class:`ReproService` (transport-free
  dispatch over :func:`repro.api.solve`/``solve_batch`` with **one**
  shared :class:`~repro.exec.cache.ResultCache` across connections)
  behind two interchangeable transports: :class:`AsyncHTTPServer`
  (asyncio, keep-alive multiplexing, bounded dispatch pool +
  queue-depth backpressure — the default) and :class:`ReproHTTPServer`
  (the historical :class:`ThreadingHTTPServer`);
* :mod:`~repro.service.client` — :class:`ServiceClient`, the matching
  typed client (persistent keep-alive connections per thread);
* :mod:`~repro.service.pool` — :class:`WorkerPool` (health-driven
  membership over ``/healthz`` probes and/or a ``/register`` manager)
  and :class:`Heartbeat` (the worker-side registration loop).

Run one with ``python -m repro serve`` and talk to it with
``python -m repro client`` or plain curl; see the README's
"Service layer" and "Tail latency & worker pools" sections for the
endpoint tour.
"""

from .client import RemoteDynamicSession, ServiceClient
from .pool import Heartbeat, WorkerPool
from .protocol import (
    PROTOCOL_VERSION,
    cut_result_from_json,
    cut_result_to_json,
    parse_batch_request,
    parse_graph,
    parse_mutate_request,
    parse_register_request,
    parse_solve_request,
)
from .server import (
    AsyncHTTPServer,
    ReproHTTPServer,
    ReproService,
    ServiceConfig,
    create_server,
)

__all__ = [
    "AsyncHTTPServer",
    "Heartbeat",
    "PROTOCOL_VERSION",
    "RemoteDynamicSession",
    "ReproHTTPServer",
    "ReproService",
    "ServiceClient",
    "ServiceConfig",
    "WorkerPool",
    "create_server",
    "cut_result_from_json",
    "cut_result_to_json",
    "parse_batch_request",
    "parse_graph",
    "parse_mutate_request",
    "parse_register_request",
    "parse_solve_request",
]
