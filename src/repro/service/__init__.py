"""Service layer: the façade served over JSON-per-request HTTP.

The ROADMAP's "service layer over the façade" — a stdlib-only
request/response server where batching and sharding land without
touching any solver:

* :mod:`~repro.service.protocol` — the wire format (graph payloads in
  three forms, :class:`~repro.api.result.CutResult` JSON with the
  cache's tagged extras encoding, structured error bodies);
* :mod:`~repro.service.server` — :class:`ReproService` (transport-free
  dispatch over :func:`repro.api.solve`/``solve_batch`` with **one**
  shared :class:`~repro.exec.cache.ResultCache` across connections)
  wrapped in a :class:`ThreadingHTTPServer`;
* :mod:`~repro.service.client` — :class:`ServiceClient`, the matching
  typed client.

Run one with ``python -m repro serve`` and talk to it with
``python -m repro client`` or plain curl; see the README's
"Service layer" section for the endpoint tour.
"""

from .client import RemoteDynamicSession, ServiceClient
from .protocol import (
    PROTOCOL_VERSION,
    cut_result_from_json,
    cut_result_to_json,
    parse_batch_request,
    parse_graph,
    parse_mutate_request,
    parse_solve_request,
)
from .server import ReproHTTPServer, ReproService, ServiceConfig, create_server

__all__ = [
    "PROTOCOL_VERSION",
    "RemoteDynamicSession",
    "ReproHTTPServer",
    "ReproService",
    "ServiceClient",
    "ServiceConfig",
    "create_server",
    "cut_result_from_json",
    "cut_result_to_json",
    "parse_batch_request",
    "parse_graph",
    "parse_mutate_request",
    "parse_solve_request",
]
