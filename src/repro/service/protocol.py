"""Wire format for the service layer: JSON envelopes in, JSON out.

This module is pure data plumbing — no sockets, no threads — so the
request/response shapes can be unit-tested (and reused by future
transports) without an HTTP server in sight:

* :func:`parse_graph` — accept a graph as edge-list text, a bare
  ``[[u, v, w], ...]`` edge array, or the :mod:`repro.graphs.io` JSON
  form, and return a :class:`~repro.graphs.graph.WeightedGraph`;
* :func:`parse_solve_request` / :func:`parse_batch_request` — validate
  a request envelope field by field, raising
  :class:`~repro.errors.ServiceError` (for envelope problems) or
  letting :class:`~repro.errors.GraphError` bubble (for graph payload
  problems); the server maps both onto structured 4xx bodies;
* :func:`cut_result_to_json` / :func:`cut_result_from_json` — carry a
  :class:`~repro.api.result.CutResult` across the wire faithfully.
  ``extras`` use the same tagged tuple encoding as the result cache's
  persistence tier (:func:`repro.exec.cache.encode_extras`), so
  everything the cache can persist the service can serve; CONGEST
  metrics travel as their summary dict (the per-phase objects stay
  server-side).
"""

from __future__ import annotations

import math
from typing import Any

from ..api.result import CutResult
from ..errors import ReproError, ServiceError
from ..exec.cache import decode_extras, encode_extras
from ..graphs.graph import WeightedGraph
from ..graphs.io import edge_list_from_text, graph_from_json

#: Bumped whenever the request/response shapes change incompatibly;
#: surfaced by ``GET /healthz`` so clients can check before talking.
#: Version 2 added the optional per-task ``seeds`` / ``solvers`` lists
#: on ``/solve_batch`` — the shard-slice form the ``remote`` backend
#: posts.  Version 3 added ``POST /mutate`` dynamic-graph sessions
#: (requests valid under an older version stay valid under a newer).
#: Version 4 added worker-pool membership (``POST /register``
#: heartbeats + ``GET /workers``) and the ``retry_after`` field on
#: backpressure (429) error bodies.
PROTOCOL_VERSION = 4

_SOLVE_FIELDS = ("graph", "solver", "epsilon", "mode", "seed", "budget", "options")
_BATCH_FIELDS = (
    "graphs", "solver", "epsilon", "mode", "seed", "budget", "options", "backend",
    "seeds", "solvers",
)
_MUTATE_FIELDS = ("session", "open", "ops", "undo", "solve", "close")
_REGISTER_FIELDS = ("url", "leaving")
_OPEN_FIELDS = ("graph", "solver", "epsilon", "mode", "seed", "patch_budget")
_MODES = ("reference", "congest")


def parse_graph(payload: Any) -> WeightedGraph:
    """Decode one graph payload (three accepted forms).

    * ``str`` — edge-list text, the :func:`repro.graphs.io.read_edge_list`
      file format;
    * ``list`` — a bare edge array ``[[u, v, weight], ...]``;
    * ``dict`` — the full JSON form ``{"nodes": ..., "edges": ...}``.
    """
    if isinstance(payload, str):
        return edge_list_from_text(payload)
    if isinstance(payload, list):
        return graph_from_json({"edges": payload})
    if isinstance(payload, dict):
        return graph_from_json(payload)
    raise ServiceError(
        "graph payload must be edge-list text, an edge array, or a "
        f"{{'nodes', 'edges'}} object, got {type(payload).__name__}"
    )


def _require_envelope(body: Any, allowed: tuple[str, ...], what: str) -> dict:
    if not isinstance(body, dict):
        raise ServiceError(
            f"{what} request body must be a JSON object, got {type(body).__name__}"
        )
    unknown = sorted(set(body) - set(allowed))
    if unknown:
        raise ServiceError(
            f"unknown {what} request fields: {', '.join(map(repr, unknown))} "
            f"(allowed: {', '.join(allowed)})"
        )
    return body


def _parse_knobs(body: dict) -> dict:
    """Validate the solver knobs shared by ``/solve`` and ``/solve_batch``."""
    solver = body.get("solver", "auto")
    if not isinstance(solver, str):
        raise ServiceError(f"'solver' must be a string, got {solver!r}")
    epsilon = body.get("epsilon")
    if epsilon is not None and (
        isinstance(epsilon, bool)
        or not isinstance(epsilon, (int, float))
        or not math.isfinite(epsilon)  # json.loads lets NaN/Infinity through
    ):
        raise ServiceError(
            f"'epsilon' must be a finite number or null, got {epsilon!r}"
        )
    mode = body.get("mode", "reference")
    if mode not in _MODES:
        raise ServiceError(f"'mode' must be one of {_MODES}, got {mode!r}")
    seed = body.get("seed", 0)
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise ServiceError(f"'seed' must be an integer, got {seed!r}")
    budget = body.get("budget")
    if budget is not None and (
        isinstance(budget, bool) or not isinstance(budget, int) or budget < 0
    ):
        raise ServiceError(
            f"'budget' must be a non-negative integer or null, got {budget!r}"
        )
    options = body.get("options", {})
    if not isinstance(options, dict) or not all(
        isinstance(key, str) for key in options
    ):
        raise ServiceError(
            f"'options' must be an object with string keys, got {options!r}"
        )
    return {
        "solver": solver,
        "epsilon": None if epsilon is None else float(epsilon),
        "mode": mode,
        "seed": seed,
        "budget": budget,
        "options": options,
    }


def parse_solve_request(body: Any) -> dict:
    """Validate a ``POST /solve`` envelope → ``{"graph": ..., knobs...}``."""
    body = _require_envelope(body, _SOLVE_FIELDS, "solve")
    if "graph" not in body:
        raise ServiceError("solve request is missing the 'graph' field")
    parsed = _parse_knobs(body)
    parsed["graph"] = parse_graph(body["graph"])
    return parsed


def parse_batch_request(body: Any) -> dict:
    """Validate a ``POST /solve_batch`` envelope → ``{"graphs": [...], ...}``.

    Besides the shared knobs, a batch may carry the per-task override
    lists ``seeds`` (integers) and ``solvers`` (registry names), each
    exactly as long as ``graphs``.  They express a *shard slice*: tasks
    whose seeds/solvers were frozen elsewhere (by an
    :class:`~repro.api.engine.Engine` building the batch) and must be
    reproduced verbatim rather than re-derived as ``seed + index`` —
    the contract the ``remote`` backend's determinism rests on.
    """
    body = _require_envelope(body, _BATCH_FIELDS, "solve_batch")
    if "graphs" not in body:
        raise ServiceError("solve_batch request is missing the 'graphs' field")
    payloads = body["graphs"]
    if not isinstance(payloads, list) or not payloads:
        raise ServiceError("'graphs' must be a non-empty list of graph payloads")
    backend = body.get("backend")
    if backend is not None and not isinstance(backend, str):
        raise ServiceError(f"'backend' must be a string or null, got {backend!r}")
    seeds = body.get("seeds")
    if seeds is not None:
        if not isinstance(seeds, list) or len(seeds) != len(payloads):
            raise ServiceError(
                "'seeds' must be a list as long as 'graphs', got "
                f"{seeds!r}"
            )
        for position, seed in enumerate(seeds):
            if isinstance(seed, bool) or not isinstance(seed, int):
                raise ServiceError(
                    f"'seeds' must hold integers; entry #{position} is {seed!r}"
                )
    solvers = body.get("solvers")
    if solvers is not None:
        if not isinstance(solvers, list) or len(solvers) != len(payloads):
            raise ServiceError(
                "'solvers' must be a list as long as 'graphs', got "
                f"{solvers!r}"
            )
        for position, name in enumerate(solvers):
            if not isinstance(name, str):
                raise ServiceError(
                    f"'solvers' must hold solver names; entry #{position} "
                    f"is {name!r}"
                )
    parsed = _parse_knobs(body)
    graphs = []
    for position, payload in enumerate(payloads):
        try:
            graphs.append(parse_graph(payload))
        except ReproError as exc:
            # GraphError as much as ServiceError: in a long batch the
            # client needs to know *which* graph was malformed.
            raise ServiceError(f"graph #{position}: {exc}") from exc
    parsed["graphs"] = graphs
    parsed["backend"] = backend
    parsed["seeds"] = seeds
    parsed["solvers"] = solvers
    return parsed


def parse_mutate_request(body: Any) -> dict:
    """Validate a ``POST /mutate`` envelope (dynamic-graph sessions).

    One request drives one session through a fixed execution order —
    **undo, then ops, then solve, then close** — so a client can rewind
    and replay in a single round trip.  Fields:

    * ``open`` — open a new session: ``{"graph": payload}`` plus the
      optional knobs ``solver``/``epsilon``/``mode``/``seed``/
      ``patch_budget``.  Mutually exclusive with ``session``;
    * ``session`` — the id of an existing session to drive;
    * ``undo`` — number of most-recent ops to revert (default 0);
    * ``ops`` — list of mutation ops in their canonical JSON form
      (``{"op": "add_edge", "u": 0, "v": 5, "weight": 2.0}``, see
      :mod:`repro.dynamic.ops`), applied in order, each individually
      acknowledged with the resulting graph hash (pod-style);
    * ``solve`` — solve the mutated graph after the ops (default
      false); the result may be certificate-served from cache;
    * ``close`` — drop the session after this request (default false).
    """
    from ..dynamic.ops import op_from_json

    body = _require_envelope(body, _MUTATE_FIELDS, "mutate")
    session = body.get("session")
    if session is not None and not isinstance(session, str):
        raise ServiceError(f"'session' must be a string id, got {session!r}")
    open_body = body.get("open")
    if open_body is not None:
        if session is not None:
            raise ServiceError(
                "'open' and 'session' are mutually exclusive: a request "
                "either opens a new session or drives an existing one"
            )
        open_body = _require_envelope(open_body, _OPEN_FIELDS, "mutate open")
        if "graph" not in open_body:
            raise ServiceError("mutate 'open' is missing the 'graph' field")
        knobs = _parse_knobs(
            {k: v for k, v in open_body.items()
             if k in ("solver", "epsilon", "mode", "seed")}
        )
        patch_budget = open_body.get("patch_budget")
        if patch_budget is not None and (
            isinstance(patch_budget, bool)
            or not isinstance(patch_budget, int)
            or patch_budget < 0
        ):
            raise ServiceError(
                "'patch_budget' must be a non-negative integer or null, "
                f"got {patch_budget!r}"
            )
        open_body = {
            "graph": parse_graph(open_body["graph"]),
            "solver": knobs["solver"],
            "epsilon": knobs["epsilon"],
            "mode": knobs["mode"],
            "seed": knobs["seed"],
            "patch_budget": patch_budget,
        }
    elif session is None:
        raise ServiceError(
            "mutate request needs 'open' (new session) or 'session' (id)"
        )
    raw_ops = body.get("ops", [])
    if not isinstance(raw_ops, list):
        raise ServiceError(f"'ops' must be a list, got {raw_ops!r}")
    ops = []
    for position, raw in enumerate(raw_ops):
        try:
            ops.append(op_from_json(raw))
        except ReproError as exc:
            raise ServiceError(f"op #{position}: {exc}") from exc
    undo = body.get("undo", 0)
    if isinstance(undo, bool) or not isinstance(undo, int) or undo < 0:
        raise ServiceError(
            f"'undo' must be a non-negative integer, got {undo!r}"
        )
    solve = body.get("solve", False)
    if not isinstance(solve, bool):
        raise ServiceError(f"'solve' must be a boolean, got {solve!r}")
    close = body.get("close", False)
    if not isinstance(close, bool):
        raise ServiceError(f"'close' must be a boolean, got {close!r}")
    return {
        "session": session,
        "open": open_body,
        "ops": ops,
        "undo": undo,
        "solve": solve,
        "close": close,
    }


def parse_register_request(body: Any) -> dict:
    """Validate a ``POST /register`` envelope (worker-pool membership).

    A worker announces (or renews) its membership by posting its own
    base URL; the same request with ``leaving=true`` withdraws it
    immediately instead of waiting for the TTL to lapse.  Registration
    doubles as the heartbeat: workers re-post every few seconds and the
    manager drops any URL whose last heartbeat is older than its
    ``worker_ttl``.
    """
    body = _require_envelope(body, _REGISTER_FIELDS, "register")
    url = body.get("url")
    if not isinstance(url, str) or not url.strip():
        raise ServiceError(
            f"register request needs a non-empty 'url' string, got {url!r}"
        )
    leaving = body.get("leaving", False)
    if not isinstance(leaving, bool):
        raise ServiceError(f"'leaving' must be a boolean, got {leaving!r}")
    return {"url": url.strip().rstrip("/"), "leaving": leaving}


def cut_result_to_json(result: CutResult) -> dict:
    """The JSON form of a :class:`CutResult` (see module docstring)."""
    return {
        "value": result.value,
        "side": sorted(result.side, key=repr),
        "solver": result.solver,
        "guarantee": result.guarantee,
        "seed": result.seed,
        "wall_time": result.wall_time,
        "extras": encode_extras(dict(result.extras)),
        "metrics": result.metrics.summary() if result.metrics is not None else None,
    }


def cut_result_from_json(payload: Any) -> CutResult:
    """Rebuild a :class:`CutResult` from :func:`cut_result_to_json` output.

    The reconstructed result is witness-verifiable (``verify(graph)``
    works), and for reference-mode runs it equals the server-side
    result field for field.  CONGEST runs come back with
    ``metrics=None``: only the summary crossed the wire, and it is
    surfaced under ``extras["congest"]`` rather than impersonating a
    full :class:`~repro.congest.metrics.RunMetrics`.
    """
    if not isinstance(payload, dict):
        raise ServiceError(
            f"result payload must be an object, got {type(payload).__name__}"
        )
    try:
        extras = decode_extras(dict(payload.get("extras", {})))
        summary = payload.get("metrics")
        if summary is not None:
            extras = dict(extras)
            extras["congest"] = summary
        return CutResult(
            value=float(payload["value"]),
            side=frozenset(payload["side"]),
            solver=str(payload["solver"]),
            guarantee=str(payload["guarantee"]),
            seed=payload["seed"],
            metrics=None,
            wall_time=float(payload["wall_time"]),
            extras=extras,
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ServiceError(f"malformed result payload: {exc}") from exc


def error_body(exc: Exception, status: int) -> dict:
    """The structured error body every non-2xx response carries.

    Backpressure rejections additionally carry ``retry_after`` (seconds
    to wait before retrying), mirrored into the HTTP ``Retry-After``
    header by both transports.
    """
    error = {
        "type": type(exc).__name__,
        "message": str(exc),
        "status": status,
    }
    retry_after = getattr(exc, "retry_after", None)
    if retry_after is not None:
        error["retry_after"] = retry_after
    return {"error": error}


def json_default(value: Any) -> str:
    """``json.dumps`` fallback so exotic extras degrade to ``repr``
    instead of failing the whole response."""
    return repr(value)


__all__ = [
    "PROTOCOL_VERSION",
    "cut_result_from_json",
    "cut_result_to_json",
    "error_body",
    "json_default",
    "parse_batch_request",
    "parse_graph",
    "parse_mutate_request",
    "parse_register_request",
    "parse_solve_request",
]
