"""Health-driven worker-pool membership (discovery without restarts).

Two cooperating pieces replace the static ``$REPRO_REMOTE_WORKERS``
list:

* :class:`WorkerPool` — the *consumer* side.  Tracks which workers are
  alive right now, from two membership sources that compose freely:
  explicit ``seeds`` URLs (each probed over ``GET /healthz``) and/or a
  ``manager`` URL (any ``repro serve`` process, polled over
  ``GET /workers`` for the URLs workers have ``POST /register``-ed).
  A member leaves after ``fail_after`` consecutive failed probes and
  rejoins on the first healthy one — no restart, no config change.
  Run :meth:`refresh` synchronously, or :meth:`start` a background
  refresher and let :meth:`current` answer from the last sweep; the
  :class:`~repro.exec.remote.RemoteExecutor`'s streaming dispatch
  polls :meth:`current` mid-sweep, which is how a worker that joins
  during an active ``solve_batch`` starts receiving chunks.
* :class:`Heartbeat` — the *producer* side, run inside each worker
  (``repro serve --register MANAGER --advertise URL``).  Re-registers
  the worker's advertised URL every ``interval`` seconds — the
  manager's ``worker_ttl`` drops silent workers — and withdraws it
  (``leaving=true``) on clean shutdown.

The manager needs no dedicated process: any service instance can play
the role, since ``/register``/``/workers`` bypass the solver lock and
the backpressure gate.
"""

from __future__ import annotations

import threading
import time
from typing import Optional, Sequence

from ..errors import ConfigError, ServiceError
from .client import ServiceClient


class WorkerPool:
    """Live membership over health probes and/or a registration manager.

    Thread-safe; all state transitions happen under one lock and
    :meth:`members`/:meth:`current` hand out copies.
    """

    def __init__(
        self,
        seeds: Sequence[str] = (),
        *,
        manager: Optional[str] = None,
        interval: float = 1.0,
        fail_after: int = 2,
        timeout: float = 5.0,
    ) -> None:
        self.seeds = tuple(str(url).rstrip("/") for url in seeds)
        self.manager = str(manager).rstrip("/") if manager else None
        if not self.seeds and self.manager is None:
            raise ConfigError(
                "WorkerPool needs seed worker URLs and/or a manager URL"
            )
        if fail_after < 1:
            raise ConfigError(f"fail_after must be >= 1, got {fail_after}")
        self.interval = float(interval)
        self.fail_after = int(fail_after)
        self.timeout = float(timeout)
        self._lock = threading.Lock()
        self._members: list[str] = []
        self._failures: dict[str, int] = {}
        self._refreshed = False
        self._clients: dict[str, ServiceClient] = {}
        self._thread: Optional[threading.Thread] = None
        self._wake = threading.Event()

    # -- probing -------------------------------------------------------

    def _client(self, url: str) -> ServiceClient:
        client = self._clients.get(url)
        if client is None:
            client = self._clients[url] = ServiceClient(url, timeout=self.timeout)
        return client

    def _probe(self, url: str) -> bool:
        try:
            self._client(url).health()
            return True
        except ServiceError:
            return False

    def refresh(self) -> list[str]:
        """One synchronous membership sweep; returns the live members.

        Order is stable: seeds first (in the given order), then
        manager-listed workers in first-listed order.
        """
        targets = list(self.seeds)
        if self.manager is not None:
            try:
                for url in self._client(self.manager).workers():
                    url = str(url).rstrip("/")
                    if url not in targets:
                        targets.append(url)
            except ServiceError:
                # Manager unreachable: fall back to probing whoever we
                # already know about, so a manager blip does not empty
                # the pool mid-sweep.
                with self._lock:
                    for url in self._members:
                        if url not in targets:
                            targets.append(url)
        alive = {url: self._probe(url) for url in targets}
        with self._lock:
            previous = set(self._members)
            members = []
            for url in targets:
                if alive[url]:
                    self._failures[url] = 0
                    members.append(url)
                else:
                    count = self._failures.get(url, 0) + 1
                    self._failures[url] = count
                    # Grace period: an existing member survives up to
                    # fail_after-1 consecutive failed probes (one slow
                    # GC pause should not eject a worker); a newcomer
                    # must answer its first probe to get in at all.
                    if url in previous and count < self.fail_after:
                        members.append(url)
            self._members = members
            self._refreshed = True
            return list(members)

    # -- membership views ----------------------------------------------

    def members(self) -> list[str]:
        """Live members; runs the first sweep synchronously if needed."""
        with self._lock:
            if self._refreshed:
                return list(self._members)
        return self.refresh()

    def current(self) -> list[str]:
        """Last-known members without probing (cheap, mid-sweep safe)."""
        with self._lock:
            return list(self._members)

    def wait_for(self, count: int, timeout: float = 10.0) -> list[str]:
        """Block until membership converges to exactly ``count``.

        The convergence assert for tests and the CI latency-smoke:
        after killing a worker, ``wait_for(n - 1)``; after starting a
        registering one, ``wait_for(n + 1)``.
        """
        deadline = time.monotonic() + timeout
        while True:
            members = self.refresh()
            if len(members) == count:
                return members
            if time.monotonic() >= deadline:
                raise ServiceError(
                    f"worker pool did not converge to {count} member(s) "
                    f"within {timeout:g}s; have {len(members)}: {members}",
                    status=0,
                )
            time.sleep(min(max(self.interval, 0.05), 0.25))

    # -- background refresh --------------------------------------------

    def start(self) -> "WorkerPool":
        """Refresh membership every ``interval`` seconds in a daemon
        thread until :meth:`stop` (idempotent; returns ``self``)."""
        with self._lock:
            if self._thread is not None:
                return self
            self._wake.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-worker-pool", daemon=True
            )
            self._thread.start()
        return self

    def _run(self) -> None:
        while True:
            try:
                self.refresh()
            except Exception:  # noqa: BLE001 - the refresher must survive
                pass
            if self._wake.wait(self.interval):
                return

    def stop(self) -> None:
        with self._lock:
            thread, self._thread = self._thread, None
        if thread is not None:
            self._wake.set()
            thread.join(timeout=self.timeout + self.interval)

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class Heartbeat:
    """Keep one worker registered with a pool manager.

    ``beat()`` once posts ``{"url": advertise}`` to the manager's
    ``/register``; :meth:`start` re-posts every ``interval`` seconds in
    a daemon thread and :meth:`stop` withdraws the registration
    (best-effort — the manager's TTL is the backstop for ungraceful
    exits).
    """

    def __init__(
        self,
        manager: str,
        advertise: str,
        *,
        interval: float = 5.0,
        timeout: float = 5.0,
    ) -> None:
        self.manager = str(manager).rstrip("/")
        self.advertise = str(advertise).rstrip("/")
        self.interval = float(interval)
        self._client = ServiceClient(self.manager, timeout=timeout)
        self._thread: Optional[threading.Thread] = None
        self._wake = threading.Event()

    def beat(self) -> bool:
        """One registration round trip; False when the manager is down."""
        try:
            self._client.register(self.advertise)
            return True
        except ServiceError:
            return False

    def start(self) -> "Heartbeat":
        if self._thread is None:
            self._wake.clear()
            self._thread = threading.Thread(
                target=self._run, name="repro-heartbeat", daemon=True
            )
            self._thread.start()
        return self

    def _run(self) -> None:
        while True:
            self.beat()
            if self._wake.wait(self.interval):
                return

    def stop(self) -> None:
        thread, self._thread = self._thread, None
        if thread is not None:
            self._wake.set()
            thread.join(timeout=self.interval + 5.0)
        try:
            self._client.register(self.advertise, leaving=True)
        except ServiceError:
            pass

    def __enter__(self) -> "Heartbeat":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


__all__ = ["Heartbeat", "WorkerPool"]
