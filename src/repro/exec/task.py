"""Picklable solve tasks — the unit of work every backend executes.

A :class:`SolveTask` freezes one façade call (graph, solver name and
knobs) into a plain frozen dataclass, and :func:`run_task` is the
module-level runner every backend invokes.  Keeping the runner at
module level (rather than a bound method or lambda) is what makes the
process backend work: ``pickle`` ships the task by value and the
runner by reference, so worker processes re-dispatch through their own
default registry.

All backends — including the serial one — run tasks through the same
code path, so a batch is bit-for-bit reproducible regardless of which
backend executed it (per-task seeds are fixed when the task is built,
and the pickled graph preserves node insertion order because dicts
round-trip ordered).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from ..errors import AlgorithmError, ReproError
from ..graphs.graph import WeightedGraph


@dataclass(frozen=True)
class SolveTask:
    """One frozen façade call: ``solve(graph, solver, **knobs)``.

    ``options`` is a sorted tuple of ``(name, value)`` pairs (tuples,
    not a dict, so tasks are hashable and canonical); ``label`` names
    the task in error messages (``"graph #3"`` for batch entries,
    ``"solver 'matula'"`` for compare fan-outs).
    """

    graph: WeightedGraph
    solver: str
    epsilon: Optional[float] = None
    mode: str = "reference"
    seed: int = 0
    budget: Optional[int] = None
    options: tuple[tuple[str, Any], ...] = ()
    label: str = ""

    def cache_key(self):
        """The :class:`repro.exec.cache.CacheKey` identifying this task."""
        from .cache import CacheKey

        return CacheKey.for_solve(
            self.graph,
            self.solver,
            epsilon=self.epsilon,
            mode=self.mode,
            seed=self.seed,
            budget=self.budget,
            options=dict(self.options),
        )


def run_task(task: SolveTask, registry=None):
    """Execute one task through the façade; the backends' single entry.

    Library errors are re-raised as :class:`AlgorithmError` prefixed
    with the task's label, so a failure deep inside a batch names the
    offending graph/solver instead of surfacing bare.

    Validation (connectivity, solver applicability) deliberately runs
    again here even though the façade pre-validates batch tasks: tasks
    can be hand-built or shipped to worker processes, so the runner
    cannot assume a trusted caller, and the re-check is O(n + m) —
    noise next to any solver.
    """
    from ..api.facade import solve

    try:
        return solve(
            task.graph,
            task.solver,
            epsilon=task.epsilon,
            mode=task.mode,
            seed=task.seed,
            budget=task.budget,
            registry=registry,
            **dict(task.options),
        )
    except ReproError as exc:
        label = task.label or f"task (solver {task.solver!r})"
        raise AlgorithmError(
            f"{label} failed in solver {task.solver!r}: {exc}"
        ) from exc


def run_task_captured(task: SolveTask, registry=None):
    """:func:`run_task`, but a failure is returned instead of raised.

    Backends map this over their tasks so one failing task does not
    discard the batch's completed work — the façade caches the
    successes and then raises the first failure in task order.  Only
    :class:`AlgorithmError` (the wrapper :func:`run_task` produces) is
    captured; genuine bugs still propagate.
    """
    try:
        return run_task(task, registry=registry)
    except AlgorithmError as exc:
        return exc


__all__ = ["SolveTask", "run_task", "run_task_captured"]
