"""Content-addressed result cache in front of ``solve``.

A :class:`CacheKey` pins everything that determines a solver's output:
the graph's canonical content hash
(:meth:`repro.graphs.WeightedGraph.content_hash`), the resolved solver
name, epsilon, mode, seed, budget and the extra options.  Two
structurally identical graphs built in different insertion orders
produce the same key, so benchmark sweeps and service traffic
(:mod:`repro.service` holds one cache shared by every connection)
that replay instances skip recomputation entirely.

:class:`ResultCache` is a bounded LRU with hit/miss counters and an
optional persistence tier: pass ``path=`` and every storable entry is
flushed to disk and reloaded by later processes.  Tuples in ``extras``
(the paper solvers report e.g. ``per_tree_values``) are persisted via
a tagged encoding and restored as tuples; results that still do not
round-trip JSON faithfully (CONGEST metrics attached, non-scalar
nodes, non-string dict keys) stay memory-only — the cache never
persists an entry it could not reproduce exactly.

The persistence tier has two shapes, picked by the ``path``:

* a ``*.json`` **file** — the historic schema-2 envelope, rewritten
  wholesale on flush (fine for short sweeps, shippable as a single
  warm-start artifact);
* a **directory** — a :class:`repro.store.SegmentStore` of append-only
  JSONL segments (manifest schema 3): flushes append only the new
  ``put``/``hit`` records, crash-truncated tails are repaired on open,
  and ``python -m repro cache compact|gc|segments`` maintain it under
  a deterministic :class:`~repro.store.RetentionPolicy`.  Disk-tier
  hits are recorded as usage metadata so compaction can keep the
  most-frequently/most-recently used entries.

The on-disk file is **versioned**: schema
:data:`CACHE_SCHEMA_VERSION` wraps the entry dict in
``{"schema": N, "entries": {digest: payload}}`` so caches can be
shared, shipped and merged across deployments without guessing at
their shape.  Unversioned files from earlier releases (a bare digest →
payload dict) are still read; files claiming a *newer* schema are left
untouched and the cache starts cold rather than misreading them.
:meth:`ResultCache.merge_from` adopts another cache's persisted
entries (existing entries win), which is the warm-start workflow:
merge the worker caches from a sharded sweep — ``python -m repro cache
merge`` is the CLI face — and hand the merged file to
``Engine(cache=...)`` or ``repro serve --warm-start`` so cold-start
sweeps begin warm.

``CutResult.verify(graph)`` makes every hit auditable: the cached
witness side can be re-checked against the graph without trusting the
cache (the façade surfaces hit/miss counters in
``CutResult.extras["cache"]`` for exactly that workflow).
"""

from __future__ import annotations

import hashlib
import json
import os
from collections import OrderedDict
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Optional, Union

try:
    import fcntl
except ImportError:  # non-POSIX: merge-on-flush stays best-effort
    fcntl = None

from ..api.result import CutResult
from ..errors import AlgorithmError
from ..graphs.graph import WeightedGraph
from ..store import SegmentStore, is_store_path

#: Pending disk-tier hit counts are appended to a store-backed cache
#: once this many accumulate, so a pure-hit workload (a warm worker
#: replaying a sweep) still persists its usage metadata without a flush.
_HIT_FLUSH_THRESHOLD = 256

#: Version of the on-disk cache file format.  Bumped whenever the JSON
#: shape changes incompatibly; the loader still accepts the unversioned
#: (pre-versioning) bare-dict form but never a *newer* schema.
CACHE_SCHEMA_VERSION = 2


def _entries_of(payload) -> Optional[dict]:
    """The digest → entry dict inside one decoded cache file, or ``None``.

    Accepts the current versioned envelope and the legacy bare dict
    (every value a dict keeps foreign JSON from masquerading as a
    cache).  Files with a newer ``schema`` return ``None`` — refusing
    to half-read a format this code does not know.
    """
    if not isinstance(payload, dict):
        return None
    if "schema" in payload:
        if payload.get("schema") != CACHE_SCHEMA_VERSION:
            return None
        entries = payload.get("entries")
        if not isinstance(entries, dict) or not all(
            isinstance(value, dict) for value in entries.values()
        ):
            return None
        return entries
    if all(isinstance(value, dict) for value in payload.values()):
        return payload  # legacy unversioned tier
    return None


@dataclass(frozen=True)
class CacheKey:
    """Everything that determines a ``solve`` outcome, canonicalised."""

    graph_hash: str
    solver: str
    epsilon: Optional[float]
    mode: str
    seed: Optional[int]
    budget: Optional[int]
    options: tuple[tuple[str, str], ...] = ()

    @classmethod
    def for_solve(
        cls,
        graph: WeightedGraph,
        solver: str,
        *,
        epsilon: Optional[float] = None,
        mode: str = "reference",
        seed: int = 0,
        budget: Optional[int] = None,
        options: Optional[dict[str, Any]] = None,
    ) -> "CacheKey":
        """Build the key for one façade call.

        ``solver`` should be the *resolved* registry name (never
        ``"auto"``) so a hit is attributable to a concrete algorithm;
        option values are canonicalised via ``repr`` and numeric knobs
        by type (``epsilon=1`` and ``epsilon=1.0`` are one key, in the
        digest as well as in memory).
        """
        canonical = tuple(
            sorted((str(k), repr(v)) for k, v in (options or {}).items())
        )
        return cls(
            graph_hash=graph.content_hash(),
            solver=str(solver),
            epsilon=None if epsilon is None else float(epsilon),
            mode=str(mode),
            seed=None if seed is None else int(seed),
            budget=None if budget is None else int(budget),
            options=canonical,
        )

    def digest(self) -> str:
        """Stable hex digest — the on-disk dictionary key."""
        blob = repr(
            (
                self.graph_hash,
                self.solver,
                self.epsilon,
                self.mode,
                self.seed,
                self.budget,
                self.options,
            )
        )
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


class ResultCache:
    """Bounded LRU over :class:`CacheKey` → :class:`CutResult`.

    Parameters
    ----------
    maxsize:
        In-memory entry cap; least-recently-used entries are evicted.
    path:
        Optional persistence tier.  A ``*.json`` file path opens the
        historic single-file tier (loaded lazily, tolerant of a
        missing/corrupt file — the cache just starts cold, rewritten
        wholesale on flush).  A *directory* path opens a
        :class:`repro.store.SegmentStore` whose flushes append only
        the new records (see :func:`repro.store.is_store_path` for how
        the two are told apart).
    """

    def __init__(
        self, maxsize: int = 1024, path: Union[str, Path, None] = None
    ) -> None:
        if maxsize < 1:
            raise AlgorithmError(f"cache maxsize must be >= 1, got {maxsize}")
        self.maxsize = int(maxsize)
        self.path = Path(path) if path is not None else None
        self._memory: OrderedDict[CacheKey, CutResult] = OrderedDict()
        self._disk: dict[str, dict] = {}
        self.store: Optional[SegmentStore] = None
        #: Records not yet appended to the store: fresh entries and
        #: coalesced per-digest hit counts.
        self._pending_puts: list[tuple[str, dict]] = []
        self._pending_hits: dict[str, int] = {}
        self.hits = 0
        self.misses = 0
        if self.path is not None and is_store_path(self.path):
            self.store = SegmentStore(self.path)
            self._disk = self.store.entries()
        elif self.path is not None and self.path.exists():
            try:
                loaded = json.loads(self.path.read_text(encoding="utf-8"))
            except (OSError, ValueError):
                loaded = None
            entries = _entries_of(loaded)
            if entries is not None:
                self._disk = entries

    # -- lookup / store ------------------------------------------------

    def get(self, key: CacheKey) -> Optional[CutResult]:
        """The cached result for ``key``, or ``None`` (counts hit/miss)."""
        entry = self._memory.get(key)
        if entry is not None:
            self._memory.move_to_end(key)
            self.hits += 1
            self._note_hit(key)
            return entry
        payload = self._disk.get(key.digest())
        if payload is not None:
            result = _result_from_payload(payload)
            if result is not None:
                self._remember(key, result)
                self.hits += 1
                self._note_hit(key)
                return result
        self.misses += 1
        return None

    def _note_hit(self, key: CacheKey) -> None:
        """Record usage metadata for the store's retention policy.

        Hit records are what let :meth:`repro.store.SegmentStore.
        compact` keep the most-frequently/most-recently used entries;
        they are coalesced per digest and appended in batches so the
        hot path never touches the disk per hit.
        """
        if self.store is None:
            return
        digest = key.digest()
        self._pending_hits[digest] = self._pending_hits.get(digest, 0) + 1
        if sum(self._pending_hits.values()) >= _HIT_FLUSH_THRESHOLD:
            self.flush()

    def put(self, key: CacheKey, result: CutResult, *, flush: bool = True) -> None:
        """Store ``result`` under ``key`` (memory always, disk if faithful).

        With a file-backed tier the file is rewritten on the store —
        even when this entry itself is memory-only — so a corrupt or
        foreign file is healed as soon as the cache is written to.
        Batch writers pass ``flush=False`` per entry and call
        :meth:`flush` once at the end, avoiding an O(N²) rewrite of the
        growing file across a sweep.  A segment-store tier appends
        instead of rewriting, so even per-entry flushes stay O(1).
        """
        self._remember(key, result)
        if self.path is not None:
            payload = _result_to_payload(result)
            if payload is not None:
                digest = key.digest()
                if self.store is not None:
                    if digest not in self._disk:
                        self._disk[digest] = payload
                        self._pending_puts.append((digest, payload))
                else:
                    self._disk[digest] = payload
            if flush:
                self.flush()

    def _remember(self, key: CacheKey, result: CutResult) -> None:
        self._memory[key] = result
        self._memory.move_to_end(key)
        while len(self._memory) > self.maxsize:
            self._memory.popitem(last=False)

    # -- maintenance ---------------------------------------------------

    def flush(self) -> None:
        """Write the persistence tier (no-op for memory-only caches).

        Store-backed caches append the pending ``put``/``hit`` records
        to the active segment — O(new entries), which is the whole
        point of the segment tier — under the store's own lock.

        File-backed caches re-read and adopt entries another process
        persisted since this cache loaded the file (ours win on
        conflict), so concurrent writers sharing one ``path`` append
        to — rather than erase — each other's work.  The
        read-merge-write runs under an advisory ``flock`` on a sibling
        ``.lock`` file (POSIX; a no-op best-effort elsewhere), and the
        file itself is written to a temp path and atomically renamed
        into place, so a reader (or a crash) mid-write never observes
        truncated JSON.
        """
        if self.path is None:
            return
        if self.store is not None:
            puts, self._pending_puts = self._pending_puts, []
            hits, self._pending_hits = self._pending_hits, {}
            self.store.append(puts, hits.items())
            return
        with self._file_lock():
            if self.path.exists():
                try:
                    on_disk = json.loads(self.path.read_text(encoding="utf-8"))
                except (OSError, ValueError):
                    on_disk = None  # corrupt/foreign file: overwrite (heal)
                entries = _entries_of(on_disk)
                if entries is not None:
                    for digest, payload in entries.items():
                        self._disk.setdefault(digest, payload)
            self._write()

    @contextmanager
    def _file_lock(self):
        """Exclusive advisory lock serialising flush/clear across processes.

        The ``.lock`` file is deliberately never deleted — unlinking a
        lock file is the classic race (a waiter can hold the lock of an
        unlinked inode while a newcomer locks a fresh file).
        """
        if self.path.parent != Path("."):
            self.path.parent.mkdir(parents=True, exist_ok=True)
        if fcntl is None:
            yield
            return
        lock_path = self.path.with_name(self.path.name + ".lock")
        with open(lock_path, "w", encoding="utf-8") as lock_file:
            fcntl.flock(lock_file, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(lock_file, fcntl.LOCK_UN)

    def _write(self) -> None:
        """Atomically replace the file with this cache's disk tier."""
        tmp = self.path.with_name(self.path.name + f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(
                {"schema": CACHE_SCHEMA_VERSION, "entries": self._disk},
                sort_keys=True,
            ),
            encoding="utf-8",
        )
        os.replace(tmp, self.path)

    def clear(self) -> None:
        """Drop every entry (both tiers) and reset the counters.

        Unlike :meth:`flush`, this truncates the file outright — no
        merge with other writers' entries — because "clear" must mean
        the persisted tier is empty afterwards.
        """
        self._memory.clear()
        self._disk.clear()
        self._pending_puts.clear()
        self._pending_hits.clear()
        self.hits = 0
        self.misses = 0
        if self.store is not None:
            self.store.clear()
        elif self.path is not None and self.path.exists():
            with self._file_lock():
                self._write()

    def merge_from(
        self, source: Union["ResultCache", str, Path], *, flush: bool = True
    ) -> "MergeCounts":
        """Adopt another cache's persistable entries (ours win on conflict).

        ``source`` is a cache file path, a store directory, or a live
        :class:`ResultCache`.  From a file, the digest → payload
        entries are read directly (versioned envelope or the legacy
        bare dict); from a store directory, its live entry map; a
        missing, unreadable, corrupt or newer-schema source raises
        :class:`AlgorithmError` — a merge *tool* must not silently
        treat a bad input as empty.  From a live cache, both its disk
        tier and the persistable part of its memory tier contribute,
        so memory-only caches merge too.

        Returns a :class:`MergeCounts` — an ``int`` equal to the
        number of entries adopted (so arithmetic keeps working), with
        ``added`` / ``kept_ours`` / ``skipped`` fields reporting the
        full outcome instead of merging silently.  With ``flush``
        (default) the merged tier is written out when this cache has a
        ``path``; merging a schema ≤ 2 file into a store-backed cache
        is exactly the schema-3 migration path.
        """
        if isinstance(source, ResultCache):
            entries = dict(source._disk)
            for key, result in source._memory.items():
                digest = key.digest()
                if digest not in entries:
                    payload = _result_to_payload(result)
                    if payload is not None:
                        entries[digest] = payload
        else:
            entries = load_cache_file(source)
        added = kept_ours = skipped = 0
        for digest, payload in entries.items():
            if not isinstance(payload, dict):
                skipped += 1
            elif digest in self._disk:
                kept_ours += 1
            else:
                self._disk[digest] = payload
                if self.store is not None:
                    self._pending_puts.append((digest, payload))
                added += 1
        if added and flush and self.path is not None:
            self.flush()
        return MergeCounts.build(
            added=added, kept_ours=kept_ours, skipped=skipped
        )

    def stats(self) -> dict[str, int]:
        """Counters snapshot: hits, misses, entries per tier.

        With a segment-store tier attached, the store's counters
        (``segments``, ``live_entries``, ``dead_records``,
        ``store_bytes``, ``compactions``, ``appended_records``) ride
        along — which is how ``/healthz`` and ``repro cache stats``
        report them without knowing about the store.
        """
        stats = {
            "hits": self.hits,
            "misses": self.misses,
            "memory_entries": len(self._memory),
            "disk_entries": len(self._disk),
        }
        if self.store is not None:
            stats.update(self.store.stats())
        return stats

    def __len__(self) -> int:
        return len(self._memory)

    def __contains__(self, key: CacheKey) -> bool:
        return key in self._memory or key.digest() in self._disk


class MergeCounts(int):
    """The outcome of one :meth:`ResultCache.merge_from` call.

    An ``int`` subclass so historic callers (``adopted +=
    cache.merge_from(...)``) keep working: the integer value is the
    number of entries **added**.  The extra fields report what a bare
    count hid — ``kept_ours`` (source entries that conflicted with an
    existing entry, which won) and ``skipped`` (malformed source
    entries that were not adoptable).
    """

    added: int
    kept_ours: int
    skipped: int

    @classmethod
    def build(cls, *, added: int, kept_ours: int, skipped: int) -> "MergeCounts":
        counts = cls(added)
        counts.added = added
        counts.kept_ours = kept_ours
        counts.skipped = skipped
        return counts


def load_cache_file(path: Union[str, Path]) -> dict[str, dict]:
    """Read a cache file's digest → payload entries, strictly.

    Unlike the cache constructor (which tolerates a missing or corrupt
    file and just starts cold), this loader is for *tooling* —
    ``merge_from``, ``python -m repro cache merge|stats`` — where
    silently treating a bad input as empty would corrupt the workflow:
    it raises :class:`AlgorithmError` for unreadable files, invalid
    JSON, unrecognised shapes and newer schemas.  A *directory* is
    read as a :class:`repro.store.SegmentStore` (manifest schema 3)
    and contributes its live entry map — so every cache tool accepts
    files and stores interchangeably.
    """
    path = Path(path)
    if path.is_dir():
        return SegmentStore(path, create=False).entries()
    try:
        loaded = json.loads(path.read_text(encoding="utf-8"))
    except OSError as exc:
        raise AlgorithmError(f"cannot read cache file {path}: {exc}") from exc
    except ValueError as exc:
        raise AlgorithmError(f"cache file {path} is not valid JSON: {exc}") from exc
    entries = _entries_of(loaded)
    if entries is None:
        schema = loaded.get("schema") if isinstance(loaded, dict) else None
        raise AlgorithmError(
            f"cache file {path} is not a result cache"
            + (
                f" this version can read (schema {schema!r}, "
                f"supported: <= {CACHE_SCHEMA_VERSION})"
                if schema is not None
                else " (unrecognised shape)"
            )
        )
    return entries


#: Marker key for the tagged tuple encoding in persisted extras.
_TUPLE_TAG = "__tuple__"


def encode_extras(value):
    """JSON-safe form of an extras value; tuples get a tagged wrapper.

    Shared with the service layer (:mod:`repro.service.protocol`), so a
    ``CutResult`` crosses the wire with the same fidelity guarantees as
    the persistence tier.

    Raises ``ValueError`` for values the encoding cannot represent
    unambiguously (a dict that itself uses the tag key).
    """
    if isinstance(value, tuple):
        return {_TUPLE_TAG: [encode_extras(item) for item in value]}
    if isinstance(value, list):
        return [encode_extras(item) for item in value]
    if isinstance(value, dict):
        if _TUPLE_TAG in value:
            raise ValueError(f"extras dict uses the reserved key {_TUPLE_TAG!r}")
        return {key: encode_extras(item) for key, item in value.items()}
    return value


def decode_extras(value):
    if isinstance(value, dict):
        if set(value) == {_TUPLE_TAG}:
            return tuple(decode_extras(item) for item in value[_TUPLE_TAG])
        return {key: decode_extras(item) for key, item in value.items()}
    if isinstance(value, list):
        return [decode_extras(item) for item in value]
    return value


def _result_to_payload(result: CutResult) -> Optional[dict]:
    """JSON payload for ``result``, or ``None`` when not faithfully storable."""
    if result.metrics is not None:
        return None  # CONGEST metrics carry per-phase objects; memory tier only
    if not all(isinstance(node, (int, str)) for node in result.side):
        return None
    try:
        extras = encode_extras(dict(result.extras))
    except ValueError:
        return None
    payload = {
        "value": result.value,
        "side": sorted(result.side, key=repr),
        "solver": result.solver,
        "guarantee": result.guarantee,
        "seed": result.seed,
        "wall_time": result.wall_time,
        "extras": extras,
    }
    try:
        if json.loads(json.dumps(payload)) != payload:
            return None  # non-string keys/NaN would come back altered — skip
    except (TypeError, ValueError):
        return None
    return payload


def _result_from_payload(payload: dict) -> Optional[CutResult]:
    try:
        return CutResult(
            value=float(payload["value"]),
            side=frozenset(payload["side"]),
            solver=str(payload["solver"]),
            guarantee=str(payload["guarantee"]),
            seed=payload["seed"],
            metrics=None,
            wall_time=float(payload["wall_time"]),
            extras=decode_extras(dict(payload["extras"])),
        )
    except (KeyError, TypeError, ValueError):
        return None  # foreign/corrupt entry: treat as a miss


__all__ = [
    "CACHE_SCHEMA_VERSION",
    "CacheKey",
    "MergeCounts",
    "ResultCache",
    "decode_extras",
    "encode_extras",
    "load_cache_file",
]
