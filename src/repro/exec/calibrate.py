"""Measured-cost calibration: fit solver cost models to wall time.

The registry's hand-fit ``cost_model`` metadata predicts *relative*
cost in abstract units — good enough to rank solvers, useless for
answering "how many seconds will this shard take".  This module closes
the loop from predicted to measured cost:

1. :func:`run_calibration` sweeps the registered solvers over a
   generator grid, measuring best-of-``repeats`` ``wall_time`` per
   (solver, instance) — the same ``wall_time`` the façade stamps on
   every :class:`~repro.api.result.CutResult`.
2. Each solver's measurements are regressed against a small feature
   basis in ``(n, m)`` that *contains the hand-fit model as one term*
   (plus intercept, ``n`` and ``m``), by weighted least squares with
   ``1/seconds`` weights — i.e. minimising squared **relative** error,
   the quantity that matters for makespan planning.  Because the basis
   is a superset of the scaled hand model, the fitted model's relative
   error on the grid is never worse than the best single-scalar hand
   fit, and the per-solver report carries both so the margin is
   auditable.
3. The fitted coefficients persist in a **versioned** JSON artifact —
   :class:`CostProfile`, schema'd like the result cache
   (``{"schema": N, "kind": "repro-cost-profile", ...}``, strict
   loader for tooling) — loadable by ``Engine(cost_profile=...)`` or
   ``$REPRO_COST_PROFILE``.  Solvers the grid never measured fall back
   to their hand-fit model scaled by the profile's median
   seconds-per-cost-unit, so mixed batches still pack in one unit.

A second, independent measurement calibrates the dynamic-graph plane:
per-slot cost of an in-place CSR patch vs per-edge cost of a full
index rebuild (:class:`DynamicCosts`), from which
:meth:`CostProfile.patch_budget_for` derives the ``patch_budget``
rebuild threshold that :meth:`Engine.dynamic_session` seeds.

No numpy anywhere: the normal-equation solve is a tiny Gaussian
elimination (at most 4×4), because the calibration path must work on
the numpy-free CI leg.
"""

from __future__ import annotations

import json
import math
import os
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from ..errors import AlgorithmError

#: Version of the on-disk profile format.  Bumped on incompatible shape
#: changes; the loader refuses newer schemas rather than misreading them.
PROFILE_SCHEMA_VERSION = 1

#: File-format discriminator so a cost profile can never be mistaken
#: for (or by) the result cache, whose envelope it otherwise mirrors.
PROFILE_KIND = "repro-cost-profile"

#: Environment variable naming a profile file every Engine loads by
#: default (explicit ``Engine(cost_profile=...)`` wins).
REPRO_COST_PROFILE_ENV = "REPRO_COST_PROFILE"

#: Reference instance for staleness checks and the CLI table — the same
#: (n, m) the ``repro solvers`` cost column samples.
REFERENCE_POINT = (100, 300)

#: Floor for predictions, in seconds: a fitted polynomial may dip
#: negative outside the grid, and a scheduler cost must stay positive.
_MIN_PREDICTION = 1e-9


def _lg(n: float) -> float:
    return math.log2(max(2.0, n))


def _term_value(term: str, n: int, m: int, hand) -> float:
    """Evaluate one basis term; ``hand`` is the solver's hand-fit model."""
    if term == "1":
        return 1.0
    if term == "n":
        return float(n)
    if term == "m":
        return float(m)
    if term == "m*lg(n)":
        return m * _lg(n)
    if term == "hand":
        if hand is None:
            raise AlgorithmError(
                "cost profile term 'hand' needs the solver's cost_model, "
                "which is no longer registered"
            )
        return float(hand(n, m))
    raise AlgorithmError(f"unknown cost-profile term {term!r}")


def _solve_normal_equations(rows: list[list[float]], rhs: list[float]) -> list[float]:
    """Least squares via normal equations + Gaussian elimination.

    ``rows`` is the (already weighted) design matrix.  A tiny ridge
    keeps the system solvable when grid collinearity makes it singular
    (e.g. every instance has ``m ≈ c·n``).
    """
    k = len(rows[0])
    ata = [[sum(r[i] * r[j] for r in rows) for j in range(k)] for i in range(k)]
    atb = [sum(r[i] * y for r, y in zip(rows, rhs)) for i in range(k)]
    ridge = 1e-9 * max(ata[i][i] for i in range(k)) + 1e-30
    for i in range(k):
        ata[i][i] += ridge
    # Gaussian elimination with partial pivoting (k <= 4).
    for col in range(k):
        pivot = max(range(col, k), key=lambda r: abs(ata[r][col]))
        ata[col], ata[pivot] = ata[pivot], ata[col]
        atb[col], atb[pivot] = atb[pivot], atb[col]
        denom = ata[col][col]
        for row in range(col + 1, k):
            factor = ata[row][col] / denom
            for j in range(col, k):
                ata[row][j] -= factor * ata[col][j]
            atb[row] -= factor * atb[col]
    coeffs = [0.0] * k
    for row in range(k - 1, -1, -1):
        acc = atb[row] - sum(ata[row][j] * coeffs[j] for j in range(row + 1, k))
        coeffs[row] = acc / ata[row][row]
    return coeffs


@dataclass(frozen=True)
class FittedModel:
    """One solver's calibrated wall-time model.

    ``terms``/``coefficients`` define ``seconds(n, m) = Σ cᵢ·termᵢ``;
    ``hand_scale`` is the best single seconds-per-cost-unit scalar for
    the hand-fit model alone (the baseline the fit must beat), and
    ``rel_error`` / ``hand_rel_error`` are the RMS relative wall-time
    errors of fitted vs scaled-hand predictions on the calibration
    grid.  ``hand_cost_ref`` records the hand model's value at
    :data:`REFERENCE_POINT` when calibrated, so a later edit to the
    registered ``cost_model`` is detectable as staleness.
    """

    solver: str
    terms: tuple[str, ...]
    coefficients: tuple[float, ...]
    r2: float
    rel_error: float
    hand_rel_error: Optional[float]
    hand_scale: Optional[float]
    hand_cost_ref: Optional[float]
    samples: int

    def predict(self, n: int, m: int, hand=None) -> float:
        """Predicted wall seconds on an (n, m) instance (clamped > 0)."""
        value = sum(
            coeff * _term_value(term, n, m, hand)
            for term, coeff in zip(self.terms, self.coefficients)
        )
        return max(value, _MIN_PREDICTION)

    def to_payload(self) -> dict:
        return {
            "terms": list(self.terms),
            "coefficients": list(self.coefficients),
            "r2": self.r2,
            "rel_error": self.rel_error,
            "hand_rel_error": self.hand_rel_error,
            "hand_scale": self.hand_scale,
            "hand_cost_ref": self.hand_cost_ref,
            "samples": self.samples,
        }

    @classmethod
    def from_payload(cls, solver: str, payload: dict) -> "FittedModel":
        try:
            return cls(
                solver=solver,
                terms=tuple(str(t) for t in payload["terms"]),
                coefficients=tuple(float(c) for c in payload["coefficients"]),
                r2=float(payload["r2"]),
                rel_error=float(payload["rel_error"]),
                hand_rel_error=(
                    None
                    if payload.get("hand_rel_error") is None
                    else float(payload["hand_rel_error"])
                ),
                hand_scale=(
                    None
                    if payload.get("hand_scale") is None
                    else float(payload["hand_scale"])
                ),
                hand_cost_ref=(
                    None
                    if payload.get("hand_cost_ref") is None
                    else float(payload["hand_cost_ref"])
                ),
                samples=int(payload["samples"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise AlgorithmError(
                f"cost profile entry for solver {solver!r} is malformed: {exc}"
            ) from exc


@dataclass(frozen=True)
class DynamicCosts:
    """Measured dynamic-plane unit costs (see module docstring).

    ``patch_slot_seconds`` is the marginal cost of shifting one CSR
    slot during an in-place splice; ``rebuild_edge_seconds`` the
    per-directed-edge cost of a from-scratch index rebuild.  Patching
    beats rebuilding while ``slots·patch < edges·rebuild`` — the
    inequality :meth:`CostProfile.patch_budget_for` solves.
    """

    patch_slot_seconds: float
    rebuild_edge_seconds: float
    samples: int

    def to_payload(self) -> dict:
        return {
            "patch_slot_seconds": self.patch_slot_seconds,
            "rebuild_edge_seconds": self.rebuild_edge_seconds,
            "samples": self.samples,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "DynamicCosts":
        try:
            return cls(
                patch_slot_seconds=float(payload["patch_slot_seconds"]),
                rebuild_edge_seconds=float(payload["rebuild_edge_seconds"]),
                samples=int(payload["samples"]),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise AlgorithmError(
                f"cost profile dynamic section is malformed: {exc}"
            ) from exc


class CostProfile:
    """Versioned, persistable bundle of fitted cost models.

    The artifact ``repro calibrate`` writes and
    ``Engine(cost_profile=...)`` / ``$REPRO_COST_PROFILE`` load.  The
    on-disk form mirrors the result cache's versioned envelope::

        {"schema": 1, "kind": "repro-cost-profile",
         "solvers": {name: {...}}, "dynamic": {...}, "grid": {...}}

    :meth:`load` is strict (tooling must not treat a bad file as
    empty); unknown *older* shapes do not exist yet, and newer schemas
    are refused.
    """

    def __init__(
        self,
        models: dict[str, FittedModel],
        dynamic: Optional[DynamicCosts] = None,
        grid: Optional[dict] = None,
    ) -> None:
        self.models = dict(models)
        self.dynamic = dynamic
        self.grid = dict(grid) if grid else {}

    def __len__(self) -> int:
        return len(self.models)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CostProfile({len(self.models)} solver(s), "
            f"dynamic={'yes' if self.dynamic else 'no'})"
        )

    # -- prediction ----------------------------------------------------

    @property
    def unit_scale(self) -> Optional[float]:
        """Median seconds-per-cost-unit across calibrated solvers.

        The conversion applied to *uncalibrated* solvers' hand-fit
        models so a mixed batch still packs in wall seconds.
        """
        scales = sorted(
            model.hand_scale
            for model in self.models.values()
            if model.hand_scale is not None and model.hand_scale > 0
        )
        if not scales:
            return None
        mid = len(scales) // 2
        if len(scales) % 2:
            return scales[mid]
        return (scales[mid - 1] + scales[mid]) / 2.0

    def predict_seconds(self, spec, n: int, m: int) -> Optional[float]:
        """Predicted wall seconds for ``spec`` on an (n, m) instance.

        Fitted model first; hand-fit model × :attr:`unit_scale` for
        solvers the grid never measured; ``None`` when neither exists
        (the caller falls back to raw cost units or uniform packing).
        """
        model = self.models.get(spec.name)
        if model is not None:
            try:
                return model.predict(n, m, hand=spec.cost_model)
            except AlgorithmError:
                pass  # 'hand' term but the model was unregistered: fall back
        if spec.cost_model is not None:
            scale = self.unit_scale
            if scale is not None:
                return max(spec.cost_model(n, m) * scale, _MIN_PREDICTION)
        return None

    def status(self, spec) -> str:
        """Calibration status for one spec: ``fitted``/``stale``/``missing``.

        ``stale`` means the solver's registered hand model no longer
        matches the one recorded at calibration time (compared at
        :data:`REFERENCE_POINT`) — re-run ``repro calibrate``.
        """
        model = self.models.get(spec.name)
        if model is None:
            return "missing"
        if model.hand_cost_ref is not None and spec.cost_model is not None:
            current = float(spec.cost_model(*REFERENCE_POINT))
            recorded = model.hand_cost_ref
            if abs(current - recorded) > 1e-9 * max(abs(recorded), 1.0):
                return "stale"
        return "fitted"

    def patch_budget_for(self, directed_edge_count: int) -> Optional[int]:
        """Calibrated ``patch_budget`` for a graph of this index size.

        The break-even splice width: patch while the predicted patch
        cost stays under the predicted full-rebuild cost.  ``None``
        without dynamic measurements (keep the library default).
        """
        if self.dynamic is None or directed_edge_count <= 0:
            return None
        patch = self.dynamic.patch_slot_seconds
        rebuild = self.dynamic.rebuild_edge_seconds
        if patch <= 0 or rebuild <= 0:
            return None
        return max(1, int(directed_edge_count * rebuild / patch))

    # -- persistence ---------------------------------------------------

    def to_payload(self) -> dict:
        return {
            "schema": PROFILE_SCHEMA_VERSION,
            "kind": PROFILE_KIND,
            "solvers": {
                name: model.to_payload()
                for name, model in sorted(self.models.items())
            },
            "dynamic": self.dynamic.to_payload() if self.dynamic else None,
            "grid": self.grid,
        }

    @classmethod
    def from_payload(cls, payload) -> "CostProfile":
        if not isinstance(payload, dict) or payload.get("kind") != PROFILE_KIND:
            raise AlgorithmError(
                "not a cost profile (missing "
                f"kind={PROFILE_KIND!r} discriminator)"
            )
        schema = payload.get("schema")
        if schema != PROFILE_SCHEMA_VERSION:
            raise AlgorithmError(
                f"cost profile schema {schema!r} is not supported "
                f"(this version reads schema {PROFILE_SCHEMA_VERSION})"
            )
        solvers = payload.get("solvers")
        if not isinstance(solvers, dict):
            raise AlgorithmError("cost profile has no 'solvers' table")
        models = {
            str(name): FittedModel.from_payload(str(name), entry)
            for name, entry in solvers.items()
        }
        dynamic = payload.get("dynamic")
        return cls(
            models=models,
            dynamic=DynamicCosts.from_payload(dynamic) if dynamic else None,
            grid=payload.get("grid") or {},
        )

    def save(self, path: Union[str, Path]) -> Path:
        """Write the versioned JSON artifact (atomic rename, like the cache)."""
        path = Path(path)
        if path.parent != Path("."):
            path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + f".tmp.{os.getpid()}")
        tmp.write_text(
            json.dumps(self.to_payload(), indent=2, sort_keys=True),
            encoding="utf-8",
        )
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CostProfile":
        """Strictly read a profile file; raises on anything unreadable."""
        path = Path(path)
        try:
            payload = json.loads(path.read_text(encoding="utf-8"))
        except OSError as exc:
            raise AlgorithmError(f"cannot read cost profile {path}: {exc}") from exc
        except ValueError as exc:
            raise AlgorithmError(
                f"cost profile {path} is not valid JSON: {exc}"
            ) from exc
        try:
            return cls.from_payload(payload)
        except AlgorithmError as exc:
            raise AlgorithmError(f"{path}: {exc}") from exc

    # -- reporting -----------------------------------------------------

    def rows(self, registry=None) -> list[list]:
        """Fit-quality table rows: solver, samples, R², errors, status."""
        out = []
        for name in sorted(self.models):
            model = self.models[name]
            status = "fitted"
            if registry is not None and name in registry:
                status = self.status(registry.get(name))
            out.append(
                [
                    name,
                    model.samples,
                    round(model.r2, 4),
                    f"{model.rel_error:.1%}",
                    (
                        f"{model.hand_rel_error:.1%}"
                        if model.hand_rel_error is not None
                        else "-"
                    ),
                    (
                        f"{model.hand_scale:.3g}"
                        if model.hand_scale is not None
                        else "-"
                    ),
                    status,
                ]
            )
        return out


def resolve_cost_profile(
    profile: Union["CostProfile", str, Path, None],
) -> Optional["CostProfile"]:
    """Normalise a ``cost_profile=`` knob value.

    A :class:`CostProfile` passes through; a path loads strictly;
    ``None`` defers to ``$REPRO_COST_PROFILE`` (missing/empty → no
    profile).  The env fallback *also* loads strictly: pointing the
    environment at a broken file should fail loudly, not silently
    degrade every engine in the process.
    """
    if isinstance(profile, CostProfile):
        return profile
    if profile is not None:
        return CostProfile.load(profile)
    env = os.environ.get(REPRO_COST_PROFILE_ENV, "").strip()
    if env:
        return CostProfile.load(env)
    return None


# ----------------------------------------------------------------------
# The calibration harness
# ----------------------------------------------------------------------


@dataclass
class CalibrationSample:
    """One measured (solver, instance) point."""

    solver: str
    family: str
    n: int
    m: int
    seconds: float


@dataclass
class CalibrationReport:
    """What :func:`run_calibration` hands back: profile + raw samples."""

    profile: CostProfile
    samples: list[CalibrationSample] = field(default_factory=list)
    skipped: list[tuple[str, str]] = field(default_factory=list)


def _fit_solver(
    name: str,
    hand,
    points: list[tuple[int, int, float]],
) -> FittedModel:
    """Weighted least squares for one solver's measurements.

    Weights are ``1/seconds`` (relative error); the basis always
    contains the scaled hand model when one is registered, so the
    fitted relative error can only improve on the single-scalar hand
    baseline computed alongside.
    """
    terms: tuple[str, ...]
    if hand is not None:
        terms = ("1", "n", "m", "hand")
    else:
        terms = ("1", "n", "m", "m*lg(n)")
    if len(points) < len(terms):
        # Degenerate grid: fall back to the richest basis that fits.
        terms = ("1", "hand") if hand is not None else ("1", "m")
        terms = terms[: max(1, len(points))]
    design, rhs = [], []
    for n, m, seconds in points:
        weight = 1.0 / max(seconds, _MIN_PREDICTION)
        design.append(
            [weight * _term_value(term, n, m, hand) for term in terms]
        )
        rhs.append(weight * seconds)  # == 1.0: unit relative target
    coeffs = _solve_normal_equations(design, rhs)

    def _rel_rms(predict: Callable[[int, int], float]) -> float:
        acc = 0.0
        for n, m, seconds in points:
            acc += ((predict(n, m) - seconds) / max(seconds, _MIN_PREDICTION)) ** 2
        return math.sqrt(acc / len(points))

    def _fitted(n: int, m: int) -> float:
        return sum(
            c * _term_value(term, n, m, hand) for term, c in zip(terms, coeffs)
        )

    rel_error = _rel_rms(_fitted)
    hand_scale = hand_rel_error = hand_cost_ref = None
    if hand is not None:
        ratios = [
            (hand(n, m) / max(seconds, _MIN_PREDICTION), seconds)
            for n, m, seconds in points
        ]
        denom = sum(r * r for r, _ in ratios)
        hand_scale = (sum(r for r, _ in ratios) / denom) if denom > 0 else 0.0
        hand_rel_error = _rel_rms(lambda n, m: hand_scale * hand(n, m))
        hand_cost_ref = float(hand(*REFERENCE_POINT))
    mean = sum(s for _, _, s in points) / len(points)
    ss_tot = sum((s - mean) ** 2 for _, _, s in points)
    ss_res = sum(
        (_fitted(n, m) - s) ** 2 for n, m, s in points
    )
    r2 = 1.0 - ss_res / ss_tot if ss_tot > 0 else 1.0
    return FittedModel(
        solver=name,
        terms=terms,
        coefficients=tuple(coeffs),
        r2=r2,
        rel_error=rel_error,
        hand_rel_error=hand_rel_error,
        hand_scale=hand_scale,
        hand_cost_ref=hand_cost_ref,
        samples=len(points),
    )


def calibrate_dynamic(
    *, n: int = 128, seed: int = 0, ops: int = 24
) -> DynamicCosts:
    """Measure patch-vs-rebuild unit costs on one representative graph.

    Patches are timed on worst-case splices (an edge between the two
    lowest-index non-adjacent nodes shifts nearly every CSR slot), so
    ``patch_slot_seconds`` is a conservative per-slot price.
    """
    from ..dynamic.incremental import IncrementalIndexer
    from ..dynamic.ops import AddEdge, RemoveEdge, MutationLog
    from ..graphs import build_family
    from ..graphs.index import GraphIndex

    graph = build_family("gnp", n, seed=seed)
    edges = graph.index().directed_edge_count

    rebuild_best = float("inf")
    for _ in range(3):
        started = time.perf_counter()
        GraphIndex(graph)
        rebuild_best = min(rebuild_best, time.perf_counter() - started)
    rebuild_edge_seconds = max(rebuild_best / max(edges, 1), _MIN_PREDICTION)

    # The two lowest-id non-adjacent endpoints: the most expensive splice.
    nodes = list(graph.nodes)
    u = nodes[0]
    v = next(x for x in nodes[1:] if x not in graph.neighbors(u))
    log = MutationLog(graph)
    indexer = IncrementalIndexer(graph)
    slots = indexer.index.directed_edge_count  # ~full shift per splice
    started = time.perf_counter()
    for _ in range(ops):
        indexer.apply(log.apply(AddEdge(u, v, 1.0)))
        indexer.apply(log.apply(RemoveEdge(u, v)))
    elapsed = time.perf_counter() - started
    patch_slot_seconds = max(
        elapsed / (2 * ops * max(slots, 1)), _MIN_PREDICTION
    )
    return DynamicCosts(
        patch_slot_seconds=patch_slot_seconds,
        rebuild_edge_seconds=rebuild_edge_seconds,
        samples=2 * ops,
    )


def run_calibration(
    *,
    registry=None,
    solvers: Optional[Sequence[str]] = None,
    families: Sequence[str] = ("gnp", "grid"),
    sizes: Sequence[int] = (12, 16, 24, 32),
    seed: int = 0,
    repeats: int = 2,
    max_hand_cost: float = 5e7,
    include_dynamic: bool = True,
) -> CalibrationReport:
    """Measure the grid, fit every solver, return profile + samples.

    ``solvers=None`` calibrates every registered non-heavy solver;
    (solver, instance) pairs whose *hand* model predicts more than
    ``max_hand_cost`` cost units are skipped up front, so a tiny grid
    stays tiny even with ``brute_force`` registered.  Inapplicable
    pairs (node caps, integer-weight requirements) are skipped and
    reported rather than failed.
    """
    from ..api.engine import Engine
    from ..api.registry import default_registry
    from ..graphs import build_family

    registry = registry if registry is not None else default_registry()
    if solvers is None:
        specs = [spec for spec in registry if not spec.heavy]
    else:
        specs = [registry.get(name) for name in solvers]

    engine = Engine(registry=registry, backend="serial")
    grid = [
        build_family(family, size, seed=seed + i)
        for family in families
        for i, size in enumerate(sizes)
    ]
    samples: list[CalibrationSample] = []
    skipped: list[tuple[str, str]] = []
    by_solver: dict[str, list[tuple[int, int, float]]] = {}
    for spec in specs:
        for graph, family in zip(
            grid, [f for f in families for _ in sizes]
        ):
            n, m = graph.number_of_nodes, graph.number_of_edges
            reason = spec.inapplicable_reason(graph)
            if reason is not None:
                skipped.append((spec.name, reason))
                continue
            if (
                spec.cost_model is not None
                and spec.cost_model(n, m) > max_hand_cost
            ):
                skipped.append(
                    (spec.name, f"over max_hand_cost on n={n}, m={m}")
                )
                continue
            best = float("inf")
            for _ in range(max(1, repeats)):
                result = engine.solve(graph, spec.name, seed=seed)
                best = min(best, result.wall_time)
            samples.append(
                CalibrationSample(
                    solver=spec.name, family=family, n=n, m=m, seconds=best
                )
            )
            by_solver.setdefault(spec.name, []).append((n, m, best))

    models = {
        name: _fit_solver(name, registry.get(name).cost_model, points)
        for name, points in by_solver.items()
    }
    dynamic = calibrate_dynamic(seed=seed) if include_dynamic else None
    profile = CostProfile(
        models=models,
        dynamic=dynamic,
        grid={
            "families": list(families),
            "sizes": [int(s) for s in sizes],
            "seed": int(seed),
            "repeats": int(repeats),
        },
    )
    return CalibrationReport(profile=profile, samples=samples, skipped=skipped)


__all__ = [
    "PROFILE_KIND",
    "PROFILE_SCHEMA_VERSION",
    "REPRO_COST_PROFILE_ENV",
    "CalibrationReport",
    "CalibrationSample",
    "CostProfile",
    "DynamicCosts",
    "FittedModel",
    "calibrate_dynamic",
    "resolve_cost_profile",
    "run_calibration",
]
