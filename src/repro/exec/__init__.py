"""Execution engine: pluggable solve backends + content-addressed cache.

The façade (:mod:`repro.api.facade`) is the single choke point for
every sweep workload; this package is the layer that scales it:

* :mod:`~repro.exec.task` — :class:`SolveTask`, a picklable frozen
  façade call, and :func:`run_task`, the module-level runner every
  backend shares (the determinism contract).
* :mod:`~repro.exec.backends` — :class:`Executor`, the
  :func:`register_backend` registry, and the ``serial`` / ``thread`` /
  ``process`` implementations, selected by the ``backend=`` knob on
  ``solve_batch``/``solve_all`` or the ``REPRO_BACKEND`` environment
  variable.
* :mod:`~repro.exec.remote` — :class:`RemoteExecutor`
  (``backend="remote"``), the sharded fan-out over a pool of
  ``repro serve`` workers (registered lazily; worker URLs via the
  constructor or ``$REPRO_REMOTE_WORKERS``).
* :mod:`~repro.exec.plan` — :func:`pack_tasks`, the deterministic LPT
  planner the ``process`` and ``remote`` backends share for cost-aware
  chunk/shard packing (uniform costs degenerate to the historic
  round-robin stripe).
* :mod:`~repro.exec.calibrate` — the measured-cost loop:
  :func:`run_calibration` fits each solver's hand cost model against
  measured ``wall_time`` and persists a versioned :class:`CostProfile`
  (``repro calibrate``), loadable via ``Engine(cost_profile=...)`` or
  ``$REPRO_COST_PROFILE`` so packing happens in predicted wall seconds.
* :mod:`~repro.exec.cache` — :class:`CacheKey` (graph content hash +
  solver knobs) and :class:`ResultCache`, an LRU with an optional
  persistence tier: a single versioned JSON file, or — when ``path``
  is a directory — a :class:`repro.store.SegmentStore` of append-only
  JSONL segments with deterministic compaction.  Mergeable via
  :meth:`ResultCache.merge_from` / ``python -m repro cache merge``
  (which reports :class:`MergeCounts`), consulted by
  ``solve``/``solve_all``/``solve_batch`` via their ``cache=``
  parameter.

Usage::

    from repro.api import solve_batch
    from repro.exec import ResultCache

    cache = ResultCache(path="results.json")
    results = solve_batch(graphs, backend="process", cache=cache)
    again = solve_batch(graphs, backend="process", cache=cache)  # all hits
"""

from .backends import (
    BACKENDS,
    Executor,
    ProcessExecutor,
    REPRO_BACKEND_ENV,
    SerialExecutor,
    ThreadExecutor,
    register_backend,
    resolve_backend,
)
from .cache import (
    CACHE_SCHEMA_VERSION,
    CacheKey,
    MergeCounts,
    ResultCache,
    load_cache_file,
)
from .calibrate import (
    PROFILE_SCHEMA_VERSION,
    REPRO_COST_PROFILE_ENV,
    CostProfile,
    DynamicCosts,
    FittedModel,
    resolve_cost_profile,
    run_calibration,
)
from .plan import PackPlan, pack_tasks
from .task import SolveTask, run_task, run_task_captured

__all__ = [
    "BACKENDS",
    "CACHE_SCHEMA_VERSION",
    "CacheKey",
    "CostProfile",
    "DynamicCosts",
    "Executor",
    "FittedModel",
    "MergeCounts",
    "PROFILE_SCHEMA_VERSION",
    "PackPlan",
    "ProcessExecutor",
    "REPRO_BACKEND_ENV",
    "REPRO_COST_PROFILE_ENV",
    "ResultCache",
    "SerialExecutor",
    "SolveTask",
    "ThreadExecutor",
    "load_cache_file",
    "pack_tasks",
    "register_backend",
    "resolve_backend",
    "resolve_cost_profile",
    "run_calibration",
    "run_task",
    "run_task_captured",
]
