"""Execution backends: a small open registry of :class:`Executor`\\ s.

Every backend implements the same tiny :class:`Executor` interface —
``run_tasks(tasks, registry=None)`` returning outcomes **in task
order**, where an outcome is the task's :class:`CutResult` or, for a
failed task, the :class:`AlgorithmError` it raised — so the façade's
``backend=`` knob (and the ``REPRO_BACKEND`` environment default)
selects one without touching any solver code, and (with a cache
attached) one failing task never discards the rest of the batch's
completed work; without a cache the serial backend fails fast instead.

Backends are *registered*, not hard-coded: :func:`register_backend`
maps a name onto an executor factory in :data:`BACKENDS`, which is
everything :func:`resolve_backend` consults.  The built-ins are
``serial`` / ``thread`` / ``process`` (this module) plus ``remote``
(:mod:`repro.exec.remote` — a sharded fan-out over a pool of
``repro serve`` workers, registered lazily so the core engine never
imports the service client unless asked to).  Third-party executors
join the same way::

    from repro.exec import Executor, register_backend

    @register_backend("mine")
    class MyExecutor(Executor):
        name = "mine"
        def run_tasks(self, tasks, registry=None, keep_going=False): ...

Determinism contract: a task's seed is frozen when the task is built
(``seed + index`` for batches), every solver draws randomness from a
local ``random.Random(seed)``, and all backends run the identical
:func:`repro.exec.task.run_task` path — so serial, thread and process
execution of the same batch produce identical results, in the same
order.  Parallelism only changes wall time.

The process backend ships tasks by value (pickle) and re-dispatches
through the worker's own default registry; a *custom* registry cannot
be shipped to workers (its adapters may be closures), so it is
rejected with a clear error — use the serial or thread backend for
custom registries.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from typing import Callable, Optional, Sequence, Union

from ..errors import AlgorithmError
from .plan import pack_tasks
from .task import SolveTask, run_task_captured

#: Environment variable supplying the default backend name.
REPRO_BACKEND_ENV = "REPRO_BACKEND"

#: Name → zero-argument executor factory; the valid values of
#: ``backend=`` / ``$REPRO_BACKEND``.  Populated via
#: :func:`register_backend`; consult :func:`resolve_backend` rather
#: than calling the factories directly.
BACKENDS: dict[str, Callable[[], "Executor"]] = {}


def register_backend(name: str, factory: Optional[Callable[[], "Executor"]] = None):
    """Register an executor factory under ``name`` (usable as decorator).

    ``factory`` is anything callable with no arguments that returns an
    :class:`Executor` — typically the executor class itself, but a
    plain function works too (the lazily imported ``remote`` backend
    uses one so that registering it costs nothing until it is picked).
    Re-registering a taken name raises :class:`AlgorithmError`: backend
    names are part of the public knob surface, silently shadowing one
    would change behaviour at a distance.
    """

    def _register(factory: Callable[[], "Executor"]):
        key = str(name).lower()
        if key in BACKENDS:
            raise AlgorithmError(f"execution backend {key!r} is already registered")
        BACKENDS[key] = factory
        return factory

    if factory is not None:
        return _register(factory)
    return _register


def _default_workers() -> int:
    return max(1, min(8, os.cpu_count() or 1))


class Executor:
    """Common interface: map :func:`run_task_captured` over tasks.

    ``run_tasks`` is order-preserving and nothing raises mid-map: a
    failed task's outcome is its captured :class:`AlgorithmError`.
    With ``keep_going=False`` (the default) a backend may stop after
    the first failure and return a truncated list — the caller has no
    use for later results it is about to discard.  The façade passes
    ``keep_going=True`` when a cache is attached, so completed work is
    preserved before the failure is raised.  The pool backends always
    run every task either way: the pool has dispatched the whole batch
    before the first failure is observed (exactly the pre-capture
    ``pool.map`` semantics).
    """

    name = "base"

    #: Optional ``cost_fn(task) -> float`` predicting each task's cost,
    #: consumed by backends that pack work (``process`` chunks, ``remote``
    #: shards) via :func:`repro.exec.plan.pack_tasks`.  ``None`` means
    #: uniform costs (the historic stripe).  The engine assigns one built
    #: from the registry's cost models — or a calibrated
    #: :class:`~repro.exec.calibrate.CostProfile` — before dispatch,
    #: unless the caller already set their own.
    cost_fn = None

    #: Diagnostic snapshot of the most recent packing decision (a
    #: :meth:`repro.exec.plan.PackPlan.summary` dict, possibly extended
    #: with actuals) — populated by packing backends after each
    #: ``run_tasks``; ``None`` before the first dispatch.
    last_plan = None

    def run_tasks(
        self,
        tasks: Sequence[SolveTask],
        registry=None,
        keep_going: bool = False,
    ) -> list:
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}()"


@register_backend("serial")
class SerialExecutor(Executor):
    """Run tasks one after another in the calling thread (the default)."""

    name = "serial"

    def run_tasks(
        self,
        tasks: Sequence[SolveTask],
        registry=None,
        keep_going: bool = False,
    ) -> list:
        outcomes = []
        for task in tasks:
            outcome = run_task_captured(task, registry=registry)
            outcomes.append(outcome)
            if isinstance(outcome, Exception) and not keep_going:
                break  # fail fast: nobody will consume later results
        return outcomes


@register_backend("thread")
class ThreadExecutor(Executor):
    """Thread-pool backend.

    Solvers are pure Python, so the GIL caps the speedup; the thread
    backend still overlaps any I/O and is the cheap way to exercise the
    concurrency contract (shared registry, local RNGs) without pickling.
    """

    name = "thread"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers if max_workers is not None else _default_workers()

    def run_tasks(
        self,
        tasks: Sequence[SolveTask],
        registry=None,
        keep_going: bool = False,
    ) -> list:
        if not tasks:
            return []
        workers = max(1, min(len(tasks), self.max_workers))
        with ThreadPoolExecutor(max_workers=workers) as pool:
            return list(
                pool.map(
                    lambda task: run_task_captured(task, registry=registry),
                    tasks,
                )
            )


def _run_chunk(tasks: Sequence[SolveTask]) -> list:
    """Worker-side runner for one packed chunk (module-level: pickles)."""
    return [run_task_captured(task) for task in tasks]


@register_backend("process")
class ProcessExecutor(Executor):
    """Process-pool backend — real parallelism for sweep workloads.

    Tasks must pickle (graphs with hashable, picklable nodes — true for
    everything the generators produce); workers resolve solvers through
    their own default registry, so custom registries are rejected.

    Chunking is cost-aware: tasks are packed into up to ``4×workers``
    chunks by :func:`~repro.exec.plan.pack_tasks` using the attached
    :attr:`~Executor.cost_fn` (uniform costs — the historic striped
    chunks — when none is set), and chunks are submitted heaviest first
    so the predicted-longest work starts immediately.  Results are
    reassembled by original task position, so the plan only changes
    wall time, never output.
    """

    name = "process"

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers if max_workers is not None else _default_workers()

    def run_tasks(
        self,
        tasks: Sequence[SolveTask],
        registry=None,
        keep_going: bool = False,
    ) -> list:
        from ..api.registry import DEFAULT_REGISTRY

        if registry is not None and registry is not DEFAULT_REGISTRY:
            raise AlgorithmError(
                "the process backend cannot ship a custom registry to worker "
                "processes; use backend='serial' or 'thread' instead"
            )
        if not tasks:
            return []
        workers = max(1, min(len(tasks), self.max_workers))
        chunk_count = min(len(tasks), 4 * workers)
        pack = pack_tasks(tasks, chunk_count, self.cost_fn)
        self.last_plan = pack.summary()
        # Heaviest chunk first: the predicted-longest work starts
        # immediately instead of queueing behind a wall of cheap chunks.
        chunk_order = sorted(
            range(chunk_count), key=lambda b: (-pack.loads[b], b)
        )
        outcomes: list = [None] * len(tasks)
        with ProcessPoolExecutor(max_workers=workers) as pool:
            futures = {
                b: pool.submit(
                    _run_chunk, [tasks[i] for i in pack.assignments[b]]
                )
                for b in chunk_order
                if pack.assignments[b]
            }
            for b, future in futures.items():
                for i, outcome in zip(pack.assignments[b], future.result()):
                    outcomes[i] = outcome
        return outcomes


@register_backend("remote")
def _remote_backend() -> Executor:
    """Sharded fan-out over ``repro serve`` workers (lazy import).

    The import cost (and the service-client machinery) is only paid
    when ``backend="remote"`` is actually resolved; worker URLs come
    from the executor's constructor or ``$REPRO_REMOTE_WORKERS``.
    """
    from .remote import RemoteExecutor

    return RemoteExecutor()


def resolve_backend(backend: Union[str, Executor, None] = None) -> Executor:
    """Turn a ``backend=`` knob value into an :class:`Executor`.

    ``None`` falls back to the ``REPRO_BACKEND`` environment variable,
    then to ``"serial"``.  An :class:`Executor` instance passes through
    untouched (bring-your-own pool sizing).
    """
    if isinstance(backend, Executor):
        return backend
    name = backend
    if name is None:
        name = os.environ.get(REPRO_BACKEND_ENV, "").strip() or "serial"
    try:
        factory = BACKENDS[str(name).lower()]
    except KeyError:
        raise AlgorithmError(
            f"unknown execution backend {name!r}; choose one of "
            f"{', '.join(sorted(BACKENDS))} (or set ${REPRO_BACKEND_ENV})"
        ) from None
    return factory()


__all__ = [
    "BACKENDS",
    "Executor",
    "ProcessExecutor",
    "REPRO_BACKEND_ENV",
    "SerialExecutor",
    "ThreadExecutor",
    "register_backend",
    "resolve_backend",
]
