"""Cost-aware task packing: the LPT planner behind shards and chunks.

Index striping (task ``i`` on worker ``i % W``) balances *counts*, not
*work*: one heavy ``brute_force`` task in an otherwise cheap sweep turns
the whole batch into max-of-one-straggler.  :func:`pack_tasks` replaces
the stripe with longest-processing-time-first (LPT) packing — sort the
tasks by predicted cost, place each on the currently least-loaded bin —
which is the classic greedy with makespan at most ``2×`` the trivial
lower bound ``max(total/bins, max_cost)`` (and in practice within a few
percent of optimal on sweep-shaped cost vectors).

Two properties make the planner safe to put under every backend:

* **Determinism** — ties are broken by task index (descending-cost sort
  is stable on the original order) and by bin id (the least-loaded bin
  with the lowest id wins), so the same tasks + costs always produce
  the same plan, and each bin's indices come out ascending.  Combined
  with the per-task frozen seeds of :class:`~repro.exec.task.SolveTask`
  and position-based reassembly, a packed run is bit-identical to a
  serial run — the plan only moves work, never changes it.
* **Stripe degeneration** — with no cost function (or a constant one)
  LPT reduces *exactly* to round-robin striping: equal costs keep the
  index order, and the lowest-id-least-loaded rule cycles through the
  bins.  ``pack_tasks(tasks, bins)`` therefore *is* the historic stripe,
  and the ``remote``/``process`` backends share one planning code path
  whether or not a cost model is attached.

Costs come from an optional ``cost_fn(task) -> float``; the engine
builds one from the solver registry's ``cost_model`` metadata — or,
when a measured :class:`~repro.exec.calibrate.CostProfile` is attached,
from fitted wall-second predictions (see :mod:`repro.exec.calibrate`).
Non-finite or negative predictions are clamped to zero rather than
allowed to corrupt the heap order.
"""

from __future__ import annotations

import heapq
import math
from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..errors import AlgorithmError


@dataclass(frozen=True)
class PackPlan:
    """One deterministic assignment of tasks onto bins.

    ``assignments[b]`` holds bin ``b``'s task indices in ascending
    order (the order the bin's owner executes them); ``costs[i]`` is
    task ``i``'s predicted cost and ``loads[b]`` the bin's predicted
    total.  Predicted units are whatever the cost function spoke —
    wall seconds under a calibrated profile, relative cost units from
    the hand-fit models otherwise.
    """

    assignments: tuple[tuple[int, ...], ...]
    costs: tuple[float, ...]
    loads: tuple[float, ...]

    @property
    def makespan(self) -> float:
        """Predicted finish time: the heaviest bin's load."""
        return max(self.loads) if self.loads else 0.0

    @property
    def lower_bound(self) -> float:
        """No plan can beat ``max(average load, heaviest single task)``."""
        if not self.costs or not self.loads:
            return 0.0
        return max(sum(self.costs) / len(self.loads), max(self.costs))

    @property
    def balance(self) -> float:
        """``makespan / lower_bound`` — 1.0 is a perfectly level plan."""
        bound = self.lower_bound
        return self.makespan / bound if bound > 0 else 1.0

    def summary(self) -> dict:
        """JSON-friendly snapshot for extras / sweep metadata."""
        return {
            "bins": len(self.assignments),
            "tasks": len(self.costs),
            "sizes": [len(indices) for indices in self.assignments],
            "loads": [round(load, 6) for load in self.loads],
            "makespan": round(self.makespan, 6),
            "lower_bound": round(self.lower_bound, 6),
            "balance": round(self.balance, 4),
        }


def _task_costs(
    tasks: Sequence, cost_fn: Optional[Callable]
) -> tuple[float, ...]:
    if cost_fn is None:
        return tuple(1.0 for _ in tasks)
    costs = []
    for task in tasks:
        cost = float(cost_fn(task))
        if not math.isfinite(cost) or cost < 0.0:
            cost = 0.0  # a broken prediction must not poison the heap
        costs.append(cost)
    return tuple(costs)


def pack_tasks(
    tasks: Sequence,
    bins: int,
    cost_fn: Optional[Callable] = None,
) -> PackPlan:
    """Pack ``tasks`` into ``bins`` bins, LPT-first, deterministically.

    ``cost_fn(task)`` predicts each task's cost; ``None`` means uniform
    costs, which makes the plan *exactly* the round-robin stripe (task
    ``i`` in bin ``i % bins``).  Bins may come out empty when there are
    more bins than tasks.  The returned plan covers every task exactly
    once, with each bin's indices ascending.
    """
    if bins < 1:
        raise AlgorithmError(f"pack_tasks needs at least 1 bin, got {bins}")
    costs = _task_costs(tasks, cost_fn)
    assignments: list[list[int]] = [[] for _ in range(bins)]
    loads = [0.0] * bins
    if costs:
        # Descending cost, ascending index on ties: with uniform costs
        # this is plain index order, which the least-loaded-lowest-id
        # heap then deals round-robin — the stripe degeneration.
        order = sorted(range(len(costs)), key=lambda i: (-costs[i], i))
        heap = [(0.0, b) for b in range(bins)]
        for i in order:
            load, b = heapq.heappop(heap)
            assignments[b].append(i)
            load += costs[i]
            loads[b] = load
            heapq.heappush(heap, (load, b))
        for indices in assignments:
            indices.sort()
    return PackPlan(
        assignments=tuple(tuple(indices) for indices in assignments),
        costs=costs,
        loads=tuple(loads),
    )


__all__ = ["PackPlan", "pack_tasks"]
