"""The ``remote`` backend: sharded fan-out over ``repro serve`` workers.

This is the ROADMAP's "sharded/distributed execution" item made
concrete: a fourth :class:`~repro.exec.backends.Executor` that ships
:class:`~repro.exec.task.SolveTask` batches to a pool of service
workers (:mod:`repro.service`) instead of local threads or processes.
The shape is exactly the seam PR 4 recorded — "a shard router is a
``ServiceClient`` pool behind the same dispatch contract":

* **Sharding** — tasks are packed into one shard per worker by the
  shared LPT planner (:func:`repro.exec.plan.pack_tasks`) using the
  attached cost function, so predicted work — not task count — is what
  balances; without a cost function the pack degenerates *exactly* to
  the historic round-robin stripe (task ``i`` homes on worker
  ``i % W``), selectable explicitly via ``plan="stripe"``.  Shards are
  posted concurrently, one HTTP ``/solve_batch`` request per shard
  carrying the tasks' frozen per-task seeds and resolved solver names
  (:meth:`repro.service.client.ServiceClient.solve_tasks`); the
  predicted-vs-actual makespan of every dispatch is recorded on
  :attr:`RemoteExecutor.last_plan` so skew stays observable.
* **Determinism** — because every task's seed and solver were frozen
  before dispatch, the workers run the identical
  :func:`repro.exec.task.run_task` path the serial backend runs, and
  results are re-assembled in input order — so ``backend="remote"`` is
  bit-identical (solver, value, partition, seed) to ``"serial"`` on
  the same inputs, regardless of pool size or which worker served
  which shard.
* **Failover** — a worker that refuses connections or dies mid-batch
  is marked dead and its shard is retried on the surviving workers
  (each shard visits a worker at most once, so retries are bounded by
  the pool size); a shard that exhausts every worker records a
  captured failure per task — the executor contract — so sibling
  shards' completed results survive (and get cached) before the
  caller raises.  Deterministic tasks make retries safe: re-running a
  shard elsewhere cannot change its results.
* **Per-task fallback** — a shard rejected wholesale with a 4xx (over
  the worker's ``--max-batch`` limit, or a task that fails inside a
  solver, which the batch endpoint reports as one structured error)
  is retried task by task over ``POST /solve``, so one poisoned task
  degrades that task — not its shard — and over-limit shards still
  complete.  Per-task solver failures come back as captured
  :class:`~repro.errors.AlgorithmError` outcomes, matching the
  executor contract.

Workers are plain ``python -m repro serve`` processes; point the
executor at them explicitly or via the ``REPRO_REMOTE_WORKERS``
environment variable (comma-separated base URLs)::

    from repro.api import solve_batch
    from repro.exec.remote import RemoteExecutor

    pool = RemoteExecutor(["http://127.0.0.1:8101", "http://127.0.0.1:8102"])
    results = solve_batch(graphs, backend=pool)

    # or: export REPRO_REMOTE_WORKERS=http://127.0.0.1:8101,http://127.0.0.1:8102
    results = solve_batch(graphs, backend="remote")

Custom registries cannot cross the wire (same restriction as the
process backend): workers resolve solver names through their own
default registry.
"""

from __future__ import annotations

import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Optional, Sequence

from ..errors import AlgorithmError, ServiceError
from .backends import Executor
from .plan import pack_tasks
from .task import SolveTask

#: Environment variable listing default worker base URLs (comma-separated).
REPRO_REMOTE_WORKERS_ENV = "REPRO_REMOTE_WORKERS"


def _env_workers() -> list[str]:
    raw = os.environ.get(REPRO_REMOTE_WORKERS_ENV, "")
    return [part.strip() for part in raw.split(",") if part.strip()]


class RemoteExecutor(Executor):
    """Fan ``SolveTask`` batches out across a pool of service workers.

    Parameters
    ----------
    workers:
        Base URLs of running ``repro serve`` processes.  ``None`` defers
        to ``$REPRO_REMOTE_WORKERS`` at :meth:`run_tasks` time (so
        ``resolve_backend("remote")`` can construct the executor before
        the pool is known).
    timeout:
        Per-request timeout in seconds, forwarded to every
        :class:`~repro.service.client.ServiceClient`.
    max_shard:
        Optional ceiling on tasks per HTTP request.  A worker's shard is
        sub-chunked to this size, keeping requests under the workers'
        ``--max-batch`` limit up front (over-limit requests still
        recover via the per-task fallback, just more slowly).
    plan:
        ``"cost"`` (default) packs shards by predicted cost via the
        attached :attr:`~repro.exec.backends.Executor.cost_fn`;
        ``"stripe"`` forces the historic uniform round-robin stripe
        (also what ``"cost"`` degenerates to with no cost function).
    cost_fn:
        Optional explicit ``cost_fn(task) -> float``.  Normally left
        unset: the engine attaches one (registry cost models, or a
        calibrated :class:`~repro.exec.calibrate.CostProfile`) before
        dispatch.
    """

    name = "remote"

    _PLAN_MODES = ("cost", "stripe")

    def __init__(
        self,
        workers: Optional[Sequence[str]] = None,
        *,
        timeout: float = 300.0,
        max_shard: Optional[int] = None,
        plan: str = "cost",
        cost_fn=None,
    ) -> None:
        if max_shard is not None and max_shard < 1:
            raise AlgorithmError(f"max_shard must be >= 1, got {max_shard}")
        if plan not in self._PLAN_MODES:
            raise AlgorithmError(
                f"unknown shard plan {plan!r}; choose one of "
                f"{', '.join(self._PLAN_MODES)}"
            )
        self.workers = [str(url).rstrip("/") for url in workers] if workers else None
        self.timeout = float(timeout)
        self.max_shard = max_shard
        self.plan = plan
        self.cost_fn = cost_fn
        self.last_plan: Optional[dict] = None

    # -- pool plumbing ---------------------------------------------------

    def _clients(self) -> list:
        from ..service.client import ServiceClient

        urls = self.workers if self.workers else _env_workers()
        if not urls:
            raise AlgorithmError(
                "the remote backend needs worker URLs: pass "
                "RemoteExecutor([...]) or set $"
                f"{REPRO_REMOTE_WORKERS_ENV} to comma-separated "
                "`repro serve` base URLs"
            )
        return [ServiceClient(url, timeout=self.timeout) for url in urls]

    # -- the Executor contract -------------------------------------------

    def run_tasks(
        self,
        tasks: Sequence[SolveTask],
        registry=None,
        keep_going: bool = False,
    ) -> list:
        from ..api.registry import DEFAULT_REGISTRY

        if registry is not None and registry is not DEFAULT_REGISTRY:
            raise AlgorithmError(
                "the remote backend cannot ship a custom registry to service "
                "workers; use backend='serial' or 'thread' instead"
            )
        if not tasks:
            return []
        clients = self._clients()

        # LPT packing: one bin per worker (bounded by the task count,
        # matching the old "no empty stripes" shard count), balanced by
        # the attached cost function.  With no cost function — or under
        # ``plan="stripe"`` — the pack degenerates exactly to the old
        # round-robin stripe (task i homes on worker i % W), preserving
        # the locality of each worker's ``--cache-file`` across warm
        # re-runs.  Optional sub-chunking keeps one request under
        # ``max_shard`` tasks; chunks of worker w's bin still home on w.
        bins = min(len(clients), len(tasks))
        cost_fn = self.cost_fn if self.plan == "cost" else None
        pack = pack_tasks(tasks, bins, cost_fn)
        shards: list[tuple[int, list[tuple[int, SolveTask]]]] = []
        for home, indices in enumerate(pack.assignments):
            shard = [(i, tasks[i]) for i in indices]
            if self.max_shard is None:
                shards.append((home, shard))
            else:
                shards.extend(
                    (home, shard[lo: lo + self.max_shard])
                    for lo in range(0, len(shard), self.max_shard)
                )
        shard_seconds = [0.0] * bins

        dead: set[int] = set()
        dead_lock = threading.Lock()
        outcomes: list = [None] * len(tasks)

        def _mark_dead(worker: int) -> None:
            with dead_lock:
                dead.add(worker)

        def _alive_order(home: int) -> list[int]:
            """Workers to try for a shard: its home first, then the rest."""
            with dead_lock:
                return [
                    w
                    for offset in range(len(clients))
                    if (w := (home + offset) % len(clients)) not in dead
                ]

        def _run_shard(home: int, shard: list[tuple[int, SolveTask]]) -> None:
            started = time.perf_counter()
            try:
                _run_shard_inner(home, shard)
            finally:
                shard_seconds[home] += time.perf_counter() - started

        def _run_shard_inner(
            home: int, shard: list[tuple[int, SolveTask]]
        ) -> None:
            failures: list[str] = []
            for worker in _alive_order(home):
                try:
                    self._shard_on_worker(clients[worker], shard, outcomes)
                    return
                except ServiceError as exc:
                    # Connectivity-class failure: the worker is gone (or
                    # answering 5xx); fail over to a survivor.  4xx-class
                    # problems were already retried per task inside
                    # ``_shard_on_worker`` and never reach this handler.
                    failures.append(f"{clients[worker].base_url}: {exc}")
                    _mark_dead(worker)
            # Every worker failed for this shard.  Per the executor
            # contract the failure is *captured* per task rather than
            # raised, so sibling shards that did complete keep their
            # outcomes (and, with a cache attached, get cached before
            # the caller re-raises the first failure in task order).
            error = AlgorithmError(
                f"remote backend: every worker failed for a shard of "
                f"{len(shard)} task(s); " + "; ".join(failures)
            )
            for position, _task in shard:
                outcomes[position] = error

        if len(shards) == 1:
            _run_shard(*shards[0])
        else:
            # Cap the posting threads: shards beyond the cap just queue
            # (the workers serialise solver work anyway), and a tiny
            # ``max_shard`` on a big sweep must not spawn one OS thread
            # per chunk.
            posting_threads = min(len(shards), max(4 * len(clients), 8), 32)
            with ThreadPoolExecutor(max_workers=posting_threads) as pool:
                futures = [
                    pool.submit(_run_shard, home, shard)
                    for home, shard in shards
                ]
                errors = [f.exception() for f in futures]
            for error in errors:
                if error is not None:
                    raise error
        # Predicted-vs-actual makespan snapshot — *diagnostic only*, so
        # it lives on the executor rather than in CutResult extras
        # (extras must stay bit-identical to a serial run).
        summary = pack.summary()
        summary["plan"] = "stripe" if cost_fn is None else "cost"
        summary["workers"] = len(clients)
        summary["actual_loads"] = [round(s, 6) for s in shard_seconds]
        summary["actual_makespan"] = round(max(shard_seconds), 6)
        self.last_plan = summary
        return outcomes

    def _shard_on_worker(self, client, shard, outcomes) -> None:
        """One shard on one worker: batch fast path, per-task fallback.

        Raises :class:`ServiceError` only for connectivity-class
        failures (unreachable, 5xx) — the caller's cue to fail over.
        A 4xx answer means the worker is alive but rejected the request
        (over ``--max-batch``, or one task failed inside a solver and
        poisoned the batch response), so the shard is retried task by
        task on the same worker and solver failures become captured
        ``AlgorithmError`` outcomes per the executor contract.
        """
        tasks = [task for _, task in shard]
        try:
            results = client.solve_tasks(tasks)
        except ServiceError as exc:
            if not _worker_rejected(exc):
                raise
            results = None
        if results is not None:
            for (position, _task), result in zip(shard, results):
                outcomes[position] = result
            return
        for position, task in shard:
            try:
                outcomes[position] = client.solve_task(task)
            except ServiceError as exc:
                if not _worker_rejected(exc):
                    raise
                label = task.label or f"task (solver {task.solver!r})"
                outcomes[position] = AlgorithmError(
                    f"{label} failed in solver {task.solver!r}: "
                    f"{_error_message(exc)}"
                )


def _worker_rejected(exc: ServiceError) -> bool:
    """True when the worker is alive but rejected the request (4xx).

    Everything else — unreachable (status 0), 5xx, or a 2xx whose body
    was not valid JSON (a dying or non-repro server) — is a worker
    failure, and the caller should fail the shard over to a survivor.
    """
    return 400 <= exc.status < 500


def _error_message(exc: ServiceError) -> str:
    """The server-side message from a structured error body, if any."""
    if isinstance(exc.payload, dict):
        error = exc.payload.get("error")
        if isinstance(error, dict) and error.get("message"):
            return str(error["message"])
    return str(exc)


__all__ = ["REPRO_REMOTE_WORKERS_ENV", "RemoteExecutor"]
