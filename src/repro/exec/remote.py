"""The ``remote`` backend: sharded fan-out over ``repro serve`` workers.

This is the ROADMAP's "sharded/distributed execution" item made
concrete: a fourth :class:`~repro.exec.backends.Executor` that ships
:class:`~repro.exec.task.SolveTask` batches to a pool of service
workers (:mod:`repro.service`) instead of local threads or processes.
The shape is exactly the seam PR 4 recorded — "a shard router is a
``ServiceClient`` pool behind the same dispatch contract":

* **Sharding** — tasks are packed into one bin per worker by the
  shared LPT planner (:func:`repro.exec.plan.pack_tasks`) using the
  attached cost function, so predicted work — not task count — is what
  balances; without a cost function the pack degenerates *exactly* to
  the historic round-robin stripe (task ``i`` homes on worker
  ``i % W``), selectable explicitly via ``plan="stripe"``.
* **Streaming dispatch** (``dispatch="stream"``, the default) — each
  bin is split into a queue of chunks and every worker gets its own
  dispatcher thread: post a chunk (one HTTP ``/solve_batch`` carrying
  the tasks' frozen per-task seeds and resolved solver names), consume
  the result, take the next chunk.  A dispatcher that drains its own
  queue *steals the tail chunk of the most-loaded sibling* — which is
  exactly the LPT planner re-packing a straggler's remainder mid-sweep
  — so batch latency tracks max-of-shards instead of sum-of-stragglers
  (one slow worker ends up holding one chunk, not its whole bin).
  When a :class:`~repro.service.pool.WorkerPool` is attached, workers
  that join mid-sweep get dispatcher threads of their own and start
  stealing immediately; workers that die fall out (below).
  ``dispatch="block"`` keeps the historical one-shot fan-out: every
  shard posted wholesale, results collected when all return.
* **Determinism** — because every task's seed and solver were frozen
  before dispatch, the workers run the identical
  :func:`repro.exec.task.run_task` path the serial backend runs, and
  results are re-assembled in input order — so ``backend="remote"`` is
  bit-identical (solver, value, partition, seed) to ``"serial"`` on
  the same inputs, regardless of pool size, dispatch mode, stealing,
  or which worker served which chunk.
* **Failover** — a worker that refuses connections or dies mid-batch
  is marked dead for the sweep; in stream mode its in-flight chunk
  goes back on the steal queue and survivors (or mid-sweep joiners)
  drain it, in block mode the shard is retried on the survivors
  (each shard visits a worker at most once, so retries are bounded by
  the pool size).  Work that exhausts every worker records a captured
  failure per task — the executor contract — so sibling shards'
  completed results survive (and get cached) before the caller
  raises.  Deterministic tasks make retries safe: re-running a chunk
  elsewhere cannot change its results.
* **Backpressure** — a worker answering the service's structured 429
  (queue full) is backed off for its advertised ``retry_after`` and
  retried, bounded by ``backoff_limit`` seconds; past that the chunk
  fails over like a connectivity failure (the worker is alive but has
  no capacity for us).
* **Per-task fallback** — a chunk rejected wholesale with a non-429
  4xx (over the worker's ``--max-batch`` limit, or a task that fails
  inside a solver, which the batch endpoint reports as one structured
  error) is retried task by task over ``POST /solve``, so one
  poisoned task degrades that task — not its chunk — and over-limit
  chunks still complete.  Per-task solver failures come back as
  captured :class:`~repro.errors.AlgorithmError` outcomes, matching
  the executor contract.

Workers are plain ``python -m repro serve`` processes.  Membership, in
precedence order: an explicit ``pool``
(:class:`~repro.service.pool.WorkerPool` — health-driven, discovers
``/register``-ed workers via a manager), explicit ``workers`` URLs,
the ``[remote]`` section of a config file
(:meth:`RemoteExecutor.from_config`), or — deprecated, with a
``DeprecationWarning`` — the ``$REPRO_REMOTE_WORKERS`` variable::

    from repro.api import solve_batch
    from repro.exec.remote import RemoteExecutor
    from repro.service import WorkerPool

    pool = RemoteExecutor(["http://127.0.0.1:8101", "http://127.0.0.1:8102"])
    results = solve_batch(graphs, backend=pool)

    # health-driven membership: workers join/leave without restarts
    discovered = RemoteExecutor(
        pool=WorkerPool(manager="http://127.0.0.1:8100").start()
    )

Custom registries cannot cross the wire (same restriction as the
process backend): workers resolve solver names through their own
default registry.
"""

from __future__ import annotations

import os
import threading
import time
import warnings
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from pathlib import Path
from typing import Optional, Sequence

from ..errors import AlgorithmError, ServiceError
from .backends import Executor
from .plan import pack_tasks
from .task import SolveTask

#: Environment variable listing default worker base URLs (comma-separated).
#: Deprecated since PR 9 in favour of the config schema
#: (``repro --config`` with a ``[remote]`` section) or a pool manager;
#: still honoured, with a :class:`DeprecationWarning`.
REPRO_REMOTE_WORKERS_ENV = "REPRO_REMOTE_WORKERS"

#: Streaming dispatch splits each worker's bin into about this many
#: chunks: enough steal granularity that a straggler's remainder can be
#: re-packed mid-sweep, few enough that per-request overhead stays
#: negligible next to solver work.
_STREAM_SPLIT = 4


def _env_workers() -> list[str]:
    raw = os.environ.get(REPRO_REMOTE_WORKERS_ENV, "")
    return [part.strip() for part in raw.split(",") if part.strip()]


class RemoteExecutor(Executor):
    """Fan ``SolveTask`` batches out across a pool of service workers.

    Parameters
    ----------
    workers:
        Base URLs of running ``repro serve`` processes.  ``None`` defers
        to the attached ``pool``, falling back (deprecated) to
        ``$REPRO_REMOTE_WORKERS`` at :meth:`run_tasks` time (so
        ``resolve_backend("remote")`` can construct the executor before
        the pool is known).
    timeout:
        Per-request timeout in seconds, forwarded to every
        :class:`~repro.service.client.ServiceClient`.
    max_shard:
        Optional ceiling on tasks per HTTP request.  A worker's shard is
        sub-chunked to this size, keeping requests under the workers'
        ``--max-batch`` limit up front (over-limit requests still
        recover via the per-task fallback, just more slowly).
    plan:
        ``"cost"`` (default) packs shards by predicted cost via the
        attached :attr:`~repro.exec.backends.Executor.cost_fn`;
        ``"stripe"`` forces the historic uniform round-robin stripe
        (also what ``"cost"`` degenerates to with no cost function).
    cost_fn:
        Optional explicit ``cost_fn(task) -> float``.  Normally left
        unset: the engine attaches one (registry cost models, or a
        calibrated :class:`~repro.exec.calibrate.CostProfile`) before
        dispatch.
    dispatch:
        ``"stream"`` (default) — chunked per-worker queues with
        mid-sweep work stealing, max-of-shards latency; ``"block"`` —
        the historical post-everything-then-wait fan-out.
    pool:
        Optional :class:`~repro.service.pool.WorkerPool` for
        health-driven membership; mid-sweep joiners are picked up by
        the streaming dispatch.  Mutually composable with ``workers``
        being ``None``.
    backoff_limit:
        Total seconds to spend backing off on a worker's 429s before
        treating it as having no capacity and failing the chunk over.
    """

    name = "remote"

    _PLAN_MODES = ("cost", "stripe")
    _DISPATCH_MODES = ("stream", "block")

    def __init__(
        self,
        workers: Optional[Sequence[str]] = None,
        *,
        timeout: float = 300.0,
        max_shard: Optional[int] = None,
        plan: str = "cost",
        cost_fn=None,
        dispatch: str = "stream",
        pool=None,
        backoff_limit: float = 30.0,
    ) -> None:
        if max_shard is not None and max_shard < 1:
            raise AlgorithmError(f"max_shard must be >= 1, got {max_shard}")
        if plan not in self._PLAN_MODES:
            raise AlgorithmError(
                f"unknown shard plan {plan!r}; choose one of "
                f"{', '.join(self._PLAN_MODES)}"
            )
        if dispatch not in self._DISPATCH_MODES:
            raise AlgorithmError(
                f"unknown dispatch mode {dispatch!r}; choose one of "
                f"{', '.join(self._DISPATCH_MODES)}"
            )
        self.workers = [str(url).rstrip("/") for url in workers] if workers else None
        self.timeout = float(timeout)
        self.max_shard = max_shard
        self.plan = plan
        self.cost_fn = cost_fn
        self.dispatch = dispatch
        self.pool = pool
        self.backoff_limit = float(backoff_limit)
        self.last_plan: Optional[dict] = None
        self._client_cache: dict[str, object] = {}
        self._client_lock = threading.Lock()

    @classmethod
    def from_config(cls, config=None) -> "RemoteExecutor":
        """Build an executor from the schema's ``[remote]`` section.

        ``config`` may be a :class:`~repro.config.RemoteConfig`, a full
        :class:`~repro.config.ReproConfig`, a config-file path, or
        ``None`` (load via ``$REPRO_CONFIG``/defaults).  A configured
        ``manager`` URL becomes a started
        :class:`~repro.service.pool.WorkerPool`, so membership is
        health-driven from the first sweep.
        """
        from ..config import ReproConfig, load_config

        if config is None or isinstance(config, (str, Path)):
            config = load_config(config)
        if isinstance(config, ReproConfig):
            config = config.remote
        pool = None
        if config.manager:
            from ..service.pool import WorkerPool

            pool = WorkerPool(
                config.workers,
                manager=config.manager,
                interval=config.health_interval,
                timeout=min(config.timeout, 10.0),
            ).start()
        return cls(
            config.workers or None if pool is None else None,
            timeout=config.timeout,
            max_shard=config.max_shard,
            plan=config.plan,
            dispatch=config.dispatch,
            pool=pool,
        )

    # -- pool plumbing ---------------------------------------------------

    def _client(self, url: str):
        """One cached keep-alive client per worker URL (reused across
        sweeps, so repeat requests skip connection setup)."""
        from ..service.client import ServiceClient

        with self._client_lock:
            client = self._client_cache.get(url)
            if client is None:
                client = ServiceClient(url, timeout=self.timeout)
                self._client_cache[url] = client
            return client

    def _membership(self) -> list[str]:
        if self.pool is not None:
            urls = self.pool.members()
            if not urls:
                raise AlgorithmError(
                    "the remote backend's worker pool has no live members; "
                    "check the worker URLs / the pool manager"
                )
            return urls
        if self.workers:
            return list(self.workers)
        env = _env_workers()
        if env:
            warnings.warn(
                f"configuring the remote backend via ${REPRO_REMOTE_WORKERS_ENV} "
                "is deprecated; pass RemoteExecutor(workers=[...]), use a "
                "[remote] section in a config file (repro --config), or "
                "attach a WorkerPool (remote.manager) for health-driven "
                "membership",
                DeprecationWarning,
                stacklevel=3,
            )
            return env
        raise AlgorithmError(
            "the remote backend needs worker URLs: pass "
            "RemoteExecutor([...]), configure [remote] workers/manager in "
            "a config file (repro --config), or set $"
            f"{REPRO_REMOTE_WORKERS_ENV} to comma-separated "
            "`repro serve` base URLs"
        )

    # -- the Executor contract -------------------------------------------

    def run_tasks(
        self,
        tasks: Sequence[SolveTask],
        registry=None,
        keep_going: bool = False,
    ) -> list:
        from ..api.registry import DEFAULT_REGISTRY

        if registry is not None and registry is not DEFAULT_REGISTRY:
            raise AlgorithmError(
                "the remote backend cannot ship a custom registry to service "
                "workers; use backend='serial' or 'thread' instead"
            )
        if not tasks:
            return []
        urls = self._membership()
        cost_fn = self.cost_fn if self.plan == "cost" else None
        if self.dispatch == "stream":
            return self._run_stream(tasks, urls, cost_fn)
        return self._run_block(tasks, urls, cost_fn)

    # -- blocking dispatch (the historical fan-out) ----------------------

    def _run_block(self, tasks, urls, cost_fn) -> list:
        clients = [self._client(url) for url in urls]

        # LPT packing: one bin per worker (bounded by the task count,
        # matching the old "no empty stripes" shard count), balanced by
        # the attached cost function.  With no cost function — or under
        # ``plan="stripe"`` — the pack degenerates exactly to the old
        # round-robin stripe (task i homes on worker i % W), preserving
        # the locality of each worker's ``--cache-file`` across warm
        # re-runs.  Optional sub-chunking keeps one request under
        # ``max_shard`` tasks; chunks of worker w's bin still home on w.
        bins = min(len(clients), len(tasks))
        pack = pack_tasks(tasks, bins, cost_fn)
        shards: list[tuple[int, list[tuple[int, SolveTask]]]] = []
        for home, indices in enumerate(pack.assignments):
            shard = [(i, tasks[i]) for i in indices]
            if self.max_shard is None:
                shards.append((home, shard))
            else:
                shards.extend(
                    (home, shard[lo: lo + self.max_shard])
                    for lo in range(0, len(shard), self.max_shard)
                )
        shard_seconds = [0.0] * bins

        dead: set[int] = set()
        dead_lock = threading.Lock()
        outcomes: list = [None] * len(tasks)

        def _mark_dead(worker: int) -> None:
            with dead_lock:
                dead.add(worker)

        def _alive_order(home: int) -> list[int]:
            """Workers to try for a shard: its home first, then the rest."""
            with dead_lock:
                return [
                    w
                    for offset in range(len(clients))
                    if (w := (home + offset) % len(clients)) not in dead
                ]

        def _run_shard(home: int, shard: list[tuple[int, SolveTask]]) -> None:
            started = time.perf_counter()
            try:
                _run_shard_inner(home, shard)
            finally:
                shard_seconds[home] += time.perf_counter() - started

        def _run_shard_inner(
            home: int, shard: list[tuple[int, SolveTask]]
        ) -> None:
            failures: list[str] = []
            for worker in _alive_order(home):
                try:
                    self._shard_on_worker(clients[worker], shard, outcomes)
                    return
                except ServiceError as exc:
                    # Connectivity-class failure: the worker is gone (or
                    # answering 5xx, or persistently throttling); fail
                    # over to a survivor.  Other 4xx-class problems were
                    # already retried per task inside
                    # ``_shard_on_worker`` and never reach this handler.
                    failures.append(f"{clients[worker].base_url}: {exc}")
                    _mark_dead(worker)
            # Every worker failed for this shard.  Per the executor
            # contract the failure is *captured* per task rather than
            # raised, so sibling shards that did complete keep their
            # outcomes (and, with a cache attached, get cached before
            # the caller re-raises the first failure in task order).
            error = AlgorithmError(
                f"remote backend: every worker failed for a shard of "
                f"{len(shard)} task(s); " + "; ".join(failures)
            )
            for position, _task in shard:
                outcomes[position] = error

        if len(shards) == 1:
            _run_shard(*shards[0])
        else:
            # Cap the posting threads: shards beyond the cap just queue
            # (the workers serialise solver work anyway), and a tiny
            # ``max_shard`` on a big sweep must not spawn one OS thread
            # per chunk.
            posting_threads = min(len(shards), max(4 * len(clients), 8), 32)
            with ThreadPoolExecutor(max_workers=posting_threads) as pool:
                futures = [
                    pool.submit(_run_shard, home, shard)
                    for home, shard in shards
                ]
                errors = [f.exception() for f in futures]
            for error in errors:
                if error is not None:
                    raise error
        # Predicted-vs-actual makespan snapshot — *diagnostic only*, so
        # it lives on the executor rather than in CutResult extras
        # (extras must stay bit-identical to a serial run).
        summary = pack.summary()
        summary["plan"] = "stripe" if cost_fn is None else "cost"
        summary["dispatch"] = "block"
        summary["workers"] = len(clients)
        summary["actual_loads"] = [round(s, 6) for s in shard_seconds]
        summary["actual_makespan"] = round(max(shard_seconds), 6)
        self.last_plan = summary
        return outcomes

    # -- streaming dispatch (max-of-shards latency) ----------------------

    def _run_stream(self, tasks, urls, cost_fn) -> list:
        """Chunked per-worker queues + mid-sweep work stealing.

        One dispatcher thread per worker keeps exactly one chunk in
        flight on it (workers serialise solver work anyway, so deeper
        pipelining buys nothing); a dispatcher whose own queue drains
        steals the *tail* chunk of the most-loaded sibling — the chunk
        its home worker would otherwise reach last.  A worker dying
        mid-chunk puts the chunk back on the steal queue; a worker
        joining mid-sweep (via the attached pool) gets a dispatcher and
        steals its way in.  Results land by original task position, so
        the outcome list is bit-identical to a serial run no matter who
        solved what.
        """
        chunk_cost = cost_fn if cost_fn is not None else (lambda _task: 1.0)
        # Dispatch state is keyed by URL, so a duplicated worker URL
        # would silently shadow its first bin; one dispatcher per
        # distinct worker is also all a duplicate could buy.
        urls = list(dict.fromkeys(urls))
        bins = min(len(urls), len(tasks))
        pack = pack_tasks(tasks, bins, cost_fn)
        queues: dict[str, deque] = {}
        total_chunks = 0
        for home, indices in enumerate(pack.assignments):
            shard = [(i, tasks[i]) for i in indices]
            size = max(1, -(-len(shard) // _STREAM_SPLIT))
            if self.max_shard is not None:
                size = min(size, self.max_shard)
            chunks = deque(
                shard[lo: lo + size] for lo in range(0, len(shard), size)
            )
            queues[urls[home]] = chunks
            total_chunks += len(chunks)

        outcomes: list = [None] * len(tasks)
        cond = threading.Condition()
        # Shared mutable dispatch state, all guarded by ``cond``:
        state = {
            "inflight": 0,
            "stolen": 0,
            "stranded": deque(),  # chunks whose worker died mid-flight
            "dead": {},  # url -> failure message
        }
        busy: dict[str, float] = {url: 0.0 for url in queues}
        joined: list[str] = []
        threads: dict[str, threading.Thread] = {}

        def _remaining_load(url: str) -> float:
            return sum(
                chunk_cost(task)
                for chunk in queues.get(url, ())
                for _pos, task in chunk
            )

        def _all_drained() -> bool:
            return (
                not state["stranded"]
                and all(not q for q in queues.values())
            )

        def _next_chunk(url: str):
            """Own queue first, then orphaned work, then steal a tail."""
            with cond:
                while True:
                    if url in state["dead"]:
                        return None
                    own = queues.get(url)
                    if own:
                        state["inflight"] += 1
                        return own.popleft()
                    if state["stranded"]:
                        state["inflight"] += 1
                        state["stolen"] += 1
                        return state["stranded"].popleft()
                    victim = max(
                        (u for u in queues if u != url and queues[u]),
                        key=_remaining_load,
                        default=None,
                    )
                    if victim is not None:
                        state["inflight"] += 1
                        state["stolen"] += 1
                        return queues[victim].pop()
                    if state["inflight"] == 0:
                        return None  # every chunk placed and finished
                    # In-flight work may still fail back onto the steal
                    # queue; wake on completion/failure or just poll.
                    cond.wait(0.05)

        def _dispatcher(url: str) -> None:
            client = self._client(url)
            while True:
                chunk = _next_chunk(url)
                if chunk is None:
                    return
                started = time.perf_counter()
                try:
                    self._shard_on_worker(client, chunk, outcomes)
                except ServiceError as exc:
                    with cond:
                        state["dead"][url] = f"{client.base_url}: {exc}"
                        state["inflight"] -= 1
                        state["stranded"].appendleft(chunk)
                        cond.notify_all()
                    busy[url] += time.perf_counter() - started
                    return
                with cond:
                    state["inflight"] -= 1
                    cond.notify_all()
                busy[url] += time.perf_counter() - started

        def _spawn(url: str) -> None:
            busy.setdefault(url, 0.0)
            queues.setdefault(url, deque())
            thread = threading.Thread(
                target=_dispatcher, args=(url,),
                name=f"repro-stream-{len(threads)}", daemon=True,
            )
            threads[url] = thread
            thread.start()

        for url in queues:
            _spawn(url)

        # The monitor: watch for completion, admit mid-sweep joiners
        # from the pool, and bound the all-workers-dead case.
        stranded_since: Optional[float] = None
        grace = max(3.0, 3 * getattr(self.pool, "interval", 1.0))
        while True:
            with cond:
                finished = state["inflight"] == 0 and _all_drained()
            alive = [t for t in threads.values() if t.is_alive()]
            if finished and not alive:
                break
            if not finished and self.pool is not None:
                for url in self.pool.current():
                    if url not in threads and url not in state["dead"]:
                        joined.append(url)
                        _spawn(url)
                        alive.append(threads[url])
            if not alive:
                if finished:
                    break
                # Work remains but every dispatcher is gone: without a
                # pool nobody can join, so the leftovers are failures;
                # with one, give a joiner a grace window to appear.
                if self.pool is None:
                    break
                now = time.monotonic()
                if stranded_since is None:
                    stranded_since = now
                elif now - stranded_since > grace:
                    break
            else:
                stranded_since = None
            time.sleep(0.01)
        for thread in threads.values():
            thread.join()

        # Anything still unplaced exhausted (or never had) a live
        # worker: captured per-task failures, the executor contract.
        failures = list(state["dead"].values())
        leftovers = list(state["stranded"])
        for queue in queues.values():
            leftovers.extend(queue)
            queue.clear()
        state["stranded"].clear()
        for chunk in leftovers:
            error = AlgorithmError(
                f"remote backend: every worker failed for a shard of "
                f"{len(chunk)} task(s); " + "; ".join(failures)
            )
            for position, _task in chunk:
                if outcomes[position] is None:
                    outcomes[position] = error

        summary = pack.summary()
        summary["plan"] = "stripe" if cost_fn is None else "cost"
        summary["dispatch"] = "stream"
        summary["workers"] = len(threads)
        summary["chunks"] = total_chunks
        summary["stolen"] = state["stolen"]
        summary["joined"] = joined
        summary["dead"] = sorted(state["dead"])
        loads = [busy[url] for url in urls if url in busy]
        loads += [busy[url] for url in joined]
        summary["actual_loads"] = [round(s, 6) for s in loads]
        summary["actual_makespan"] = round(max(loads, default=0.0), 6)
        self.last_plan = summary
        return outcomes

    # -- one chunk on one worker -----------------------------------------

    def _shard_on_worker(self, client, shard, outcomes) -> None:
        """One shard on one worker: batch fast path, per-task fallback.

        Raises :class:`ServiceError` only for connectivity-class
        failures (unreachable, 5xx, throttling past ``backoff_limit``)
        — the caller's cue to fail over.  A 429 means the worker is
        saturated: honour its ``retry_after`` and try again, bounded.
        Any other 4xx answer means the worker is alive but rejected
        the request (over ``--max-batch``, or one task failed inside a
        solver and poisoned the batch response), so the shard is
        retried task by task on the same worker and solver failures
        become captured ``AlgorithmError`` outcomes per the executor
        contract.
        """
        tasks = [task for _, task in shard]
        try:
            results = self._post_throttled(lambda: client.solve_tasks(tasks))
        except ServiceError as exc:
            if not _worker_rejected(exc):
                raise
            results = None
        if results is not None:
            for (position, _task), result in zip(shard, results):
                outcomes[position] = result
            return
        for position, task in shard:
            try:
                outcomes[position] = self._post_throttled(
                    lambda task=task: client.solve_task(task)
                )
            except ServiceError as exc:
                if not _worker_rejected(exc):
                    raise
                label = task.label or f"task (solver {task.solver!r})"
                outcomes[position] = AlgorithmError(
                    f"{label} failed in solver {task.solver!r}: "
                    f"{_error_message(exc)}"
                )

    def _post_throttled(self, post):
        """Run one request, honouring 429 + ``retry_after`` backpressure.

        Total backoff is bounded by ``backoff_limit``; a worker still
        throttling past it raises the 429 to the caller, which treats
        it as connectivity-class (no capacity for us ≈ not there).
        """
        waited = 0.0
        while True:
            try:
                return post()
            except ServiceError as exc:
                if exc.status != 429 or waited >= self.backoff_limit:
                    raise
                pause = exc.retry_after if exc.retry_after else 0.2
                pause = max(0.05, min(pause, 5.0, self.backoff_limit - waited))
                time.sleep(pause)
                waited += pause


def _worker_rejected(exc: ServiceError) -> bool:
    """True when the worker is alive but rejected the request (4xx).

    429 is excluded: a saturated worker did not *reject* the work, it
    asked us to come back later — after bounded backoff it is handled
    like a connectivity failure (fail the chunk over), never like a
    poisoned task.  Everything else — unreachable (status 0), 5xx, or
    a 2xx whose body was not valid JSON (a dying or non-repro server)
    — is a worker failure, and the caller should fail the shard over
    to a survivor.
    """
    return 400 <= exc.status < 500 and exc.status != 429


def _error_message(exc: ServiceError) -> str:
    """The server-side message from a structured error body, if any."""
    if isinstance(exc.payload, dict):
        error = exc.payload.get("error")
        if isinstance(error, dict) and error.get("message"):
            return str(error["message"])
    return str(exc)


__all__ = ["REPRO_REMOTE_WORKERS_ENV", "RemoteExecutor"]
