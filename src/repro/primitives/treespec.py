"""Tree wiring for primitives: where a node finds its parent and children.

Distributed primitives (convergecast, downcast, pipelined sums) operate
over *some* tree — the input spanning tree ``T``, a BFS tree built at run
time, or ``T`` restricted to a fragment.  A :class:`TreeSpec` names the
node-memory keys where that tree's parent pointer and children list live,
so one primitive implementation serves every tree.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..congest.node import NodeContext, NodeId
from ..congest.network import CongestNetwork
from ..graphs.trees import RootedTree


@dataclass(frozen=True)
class TreeSpec:
    """Names the memory keys of a tree structure known to each node."""

    prefix: str

    @property
    def parent_key(self) -> str:
        return f"{self.prefix}:parent"

    @property
    def children_key(self) -> str:
        return f"{self.prefix}:children"

    @property
    def depth_key(self) -> str:
        return f"{self.prefix}:depth"

    def parent(self, ctx: NodeContext) -> Optional[NodeId]:
        """This node's parent in the tree (None at the root)."""
        return ctx.memory.get(self.parent_key)

    def children(self, ctx: NodeContext) -> list[NodeId]:
        """This node's children in the tree."""
        return ctx.memory.get(self.children_key, [])

    def depth(self, ctx: NodeContext) -> Optional[int]:
        return ctx.memory.get(self.depth_key)

    def is_root(self, ctx: NodeContext) -> bool:
        return self.parent(ctx) is None


SPANNING_TREE = TreeSpec("T")
"""The input spanning tree of Theorem 2.1 (preloaded into node memory)."""

BFS_TREE = TreeSpec("bfs")
"""The breadth-first tree built by :class:`~repro.primitives.bfs.BFSTreeBuild`."""

FRAGMENT_TREE = TreeSpec("fragT")
"""The input tree restricted to each node's fragment (Step 1 artefact)."""


def load_tree_into_memory(
    network: CongestNetwork, tree: RootedTree, spec: TreeSpec = SPANNING_TREE
) -> None:
    """Install a rooted tree as *input knowledge* of every node.

    Theorem 2.1 takes the spanning tree ``T`` as an input: every node
    knows which of its incident edges are tree edges and which neighbour
    is its tree parent.  This helper writes exactly that local knowledge
    (parent, children, depth) into node memory.
    """
    for u in network.nodes:
        mem = network.memory[u]
        mem[spec.parent_key] = tree.parent(u)
        mem[spec.children_key] = tree.children(u)
        mem[spec.depth_key] = tree.depth(u)
