"""Distributed building blocks over the CONGEST simulator (system S4).

* BFS-tree construction — O(D) rounds.
* Convergecast — one aggregate up a tree, O(depth) rounds.
* Downcast / upcast-union / gossip — k items in O(depth + k) rounds.
* Pipelined keyed sums — k independent subtree sums in O(depth + k)
  rounds via monotone streaming (the Step 5 workhorse).
"""

from .bfs import BFSTreeBuild, build_bfs_tree
from .convergecast import Convergecast, add, min_pair
from .dissemination import DowncastItems, UpcastUnion, gossip_items
from .keyed_sums import BlockingKeyedSum, PipelinedKeyedSum
from .treespec import (
    BFS_TREE,
    FRAGMENT_TREE,
    SPANNING_TREE,
    TreeSpec,
    load_tree_into_memory,
)

__all__ = [
    "BFSTreeBuild",
    "build_bfs_tree",
    "Convergecast",
    "add",
    "min_pair",
    "DowncastItems",
    "UpcastUnion",
    "gossip_items",
    "BlockingKeyedSum",
    "PipelinedKeyedSum",
    "BFS_TREE",
    "FRAGMENT_TREE",
    "SPANNING_TREE",
    "TreeSpec",
    "load_tree_into_memory",
]
