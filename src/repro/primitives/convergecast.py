"""Convergecast: aggregate one value up a tree in O(depth) rounds.

Every node combines its own initial value with the aggregates of its
children and forwards the result to its parent.  Besides the root total,
every node retains its own *subtree aggregate* — exactly the quantity
``Σ_{u ∈ v↓∩F} f(u)`` that Step 3 of the paper needs within fragments.

The aggregate value must fit in O(1) words (numbers or small tuples);
the engine's size audit enforces this.
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from ..congest.node import Inbox, NodeContext, NodeProgram
from .treespec import TreeSpec

InitialFn = Callable[[NodeContext], Any]
CombineFn = Callable[[Any, Any], Any]


def add(a, b):
    """Default combiner: numeric addition."""
    return a + b


def min_pair(a, b):
    """Combiner for (value, witness) minimisation with deterministic ties."""
    return a if tuple(a) <= tuple(b) else b


class Convergecast(NodeProgram):
    """Aggregate ``initial(ctx)`` over every subtree of ``spec``'s tree.

    Parameters
    ----------
    spec:
        Which tree to aggregate over (e.g. the input spanning tree, a BFS
        tree, or the fragment-restricted tree).
    initial:
        Callable producing the node's own contribution.
    combine:
        Associative, commutative combiner.
    out_key:
        Memory key under which each node stores its subtree aggregate.
    """

    KIND = "cc"

    def __init__(
        self,
        spec: TreeSpec,
        initial: InitialFn,
        combine: CombineFn = add,
        out_key: str = "cc:sum",
    ) -> None:
        self.spec = spec
        self.initial = initial
        self.combine = combine
        self.out_key = out_key
        self._pending: set = set()
        self._acc: Any = None

    def on_start(self, ctx: NodeContext) -> None:
        self._pending = set(self.spec.children(ctx))
        self._acc = self.initial(ctx)
        if not self._pending:
            self._finish(ctx)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        for src, msg in inbox:
            if msg.kind != self.KIND:
                continue
            if src not in self._pending:
                raise ValueError(
                    f"convergecast value from unexpected child {src!r} at "
                    f"{ctx.node!r}"
                )
            self._pending.discard(src)
            self._acc = self.combine(self._acc, _decode(msg.payload[0]))
        if not self._pending and self._acc is not None:
            self._finish(ctx)

    def _finish(self, ctx: NodeContext) -> None:
        ctx.memory[self.out_key] = self._acc
        ctx.output(self.out_key, self._acc)
        parent = self.spec.parent(ctx)
        if parent is not None:
            ctx.send(parent, self.KIND, _encode(self._acc))
        self._acc = None  # guard against double finish


def _encode(value):
    return tuple(value) if isinstance(value, (list, tuple)) else value


def _decode(value):
    return value
