"""Item dissemination primitives: downcast, upcast-union, and gossip.

These are the pipelined O(depth + k) building blocks of the paper:

* :class:`DowncastItems` — every node holding items streams them to all
  of its children; every node records everything that passes through it.
  With the engine's per-edge FIFOs, k items pipeline in O(depth + k)
  rounds.
* :class:`UpcastUnion` — every node holds a set of items; at quiescence
  every node has recorded the union of the items in its subtree, and the
  root knows the union of all items.  Duplicate suppression keeps each
  edge's traffic at one message per *distinct* item.
* :func:`gossip_items` — upcast to the BFS root then downcast, making
  every node know the union of all items in O(D + k) rounds.  This is
  the "broadcast to the whole network" operation used throughout
  Steps 1–5 (inter-fragment edges, fragment degrees, merging nodes,
  the tree ``T'_F``).

Items are tuples of scalars (O(1) words each).
"""

from __future__ import annotations

from collections.abc import Callable, Iterable

from ..congest.network import CongestNetwork
from ..congest.node import Inbox, NodeContext, NodeProgram
from .bfs import BFS_TREE, build_bfs_tree
from .treespec import TreeSpec

ItemsFn = Callable[[NodeContext], Iterable[tuple]]


def _as_item(payload: tuple) -> tuple:
    # Message payloads are already tuples; this is documentation-level
    # typing, not a copy.
    return payload


class DowncastItems(NodeProgram):
    """Stream items down the tree; every node records what it sees.

    ``items`` produces the items originating at each node (typically only
    the root has any).  Each node appends every item it originates or
    receives to ``memory[out_key]`` (a list, in arrival order) and
    forwards it to all children.
    """

    KIND = "dc"

    def __init__(self, spec: TreeSpec, items: ItemsFn, out_key: str = "dc:items") -> None:
        self.spec = spec
        self.items = items
        self.out_key = out_key
        self._children: list = []
        self._record_append = None
        self._relay = None

    def on_start(self, ctx: NodeContext) -> None:
        record = ctx.memory.setdefault(self.out_key, [])
        # The tree is static for the phase: read it once, and bind the
        # per-hop operations (record, validated relay) once — on_round
        # runs once per delivered item, the hottest program path in the
        # library.
        self._children = children = self.spec.children(ctx)
        self._record_append = record.append
        self._relay = ctx.relay(children) if children else None
        for item in self.items(ctx):
            record.append(tuple(item))
            ctx.multicast(children, self.KIND, *item)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        record_append = self._record_append
        relay = self._relay
        kind = self.KIND
        if relay is None:  # leaf: record only
            for _src, msg in inbox:
                if msg.kind == kind:
                    record_append(_as_item(msg.payload))
            return
        for _src, msg in inbox:
            if msg.kind == kind:
                record_append(_as_item(msg.payload))
                relay(msg)


class UpcastUnion(NodeProgram):
    """Union of item sets, aggregated towards the root with dedup.

    At quiescence ``memory[out_key]`` at node ``v`` is the union of the
    initial items over ``v``'s subtree (a :class:`set` of tuples).
    """

    KIND = "uu"

    def __init__(self, spec: TreeSpec, items: ItemsFn, out_key: str = "uu:items") -> None:
        self.spec = spec
        self.items = items
        self.out_key = out_key
        self._parent = None
        self._seen = None
        self._relay = None

    def on_start(self, ctx: NodeContext) -> None:
        seen: set[tuple] = set()
        self._seen = seen
        ctx.memory[self.out_key] = seen
        parent = self._parent = self.spec.parent(ctx)
        self._relay = ctx.relay((parent,)) if parent is not None else None
        for item in self.items(ctx):
            item = tuple(item)
            if item not in seen:
                seen.add(item)
                if parent is not None:
                    ctx.send(parent, self.KIND, *item)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        seen = self._seen
        relay = self._relay
        kind = self.KIND
        if relay is None:  # root: dedup only
            for _src, msg in inbox:
                if msg.kind == kind:
                    seen.add(_as_item(msg.payload))
            return
        for _src, msg in inbox:
            if msg.kind == kind:
                item = _as_item(msg.payload)
                if item not in seen:
                    seen.add(item)
                    relay(msg)


def gossip_items(
    network: CongestNetwork,
    items: ItemsFn,
    out_key: str,
    phase_name: str = "gossip",
    bfs_spec: TreeSpec = BFS_TREE,
    build_tree_if_missing: bool = True,
) -> None:
    """Make every node know the union of all nodes' items.

    Runs an upcast-union to the BFS root followed by a downcast of the
    root's collected set.  Afterwards every node's ``memory[out_key]``
    holds the full set of items (as a set of tuples).  Costs
    O(D + k) measured rounds where k is the number of distinct items.
    """
    sample = network.memory[network.nodes[0]]
    if build_tree_if_missing and f"{bfs_spec.prefix}:root" not in sample:
        build_bfs_tree(network, spec=bfs_spec)

    up_key = f"{out_key}:up"
    network.run_phase(
        f"{phase_name}:up",
        lambda u: UpcastUnion(bfs_spec, items, out_key=up_key),
    )

    def root_items(ctx: NodeContext) -> Iterable[tuple]:
        if bfs_spec.parent(ctx) is None:
            return sorted(ctx.memory[up_key])
        return ()

    down_key = f"{out_key}:down"
    network.run_phase(
        f"{phase_name}:down",
        lambda u: DowncastItems(bfs_spec, root_items, out_key=down_key),
    )
    for u in network.nodes:
        mem = network.memory[u]
        mem[out_key] = set(mem.pop(down_key, ()))
        mem.pop(up_key, None)
