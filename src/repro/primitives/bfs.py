"""Distributed BFS-tree construction (flooding), O(D) rounds.

The BFS tree rooted at a designated node is the backbone for global
aggregation and broadcast: its depth is at most the network diameter
``D``, so convergecasts over it cost O(D) rounds and pipelined streams of
``k`` items cost O(D + k).

Protocol: the root floods a ``bfs`` token carrying its depth; every other
node adopts the first proposer as its parent (ties within a round broken
by smallest sender id for determinism), acknowledges with ``adopt`` so
parents learn their children, and forwards the token.
"""

from __future__ import annotations

from typing import Optional

from ..congest.node import Inbox, NodeContext, NodeId, NodeProgram
from .treespec import BFS_TREE, TreeSpec


class BFSTreeBuild(NodeProgram):
    """Per-node program building a BFS tree rooted at ``root``.

    After quiescence every node's memory holds, under ``spec``'s keys,
    its parent (None at the root), its list of children, and its depth;
    ``spec.prefix + ":root"`` records the root id.
    """

    def __init__(self, root: NodeId, spec: TreeSpec = BFS_TREE) -> None:
        self.root = root
        self.spec = spec
        self._decided = False

    def on_start(self, ctx: NodeContext) -> None:
        ctx.memory[self.spec.children_key] = []
        ctx.memory[f"{self.spec.prefix}:root"] = self.root
        if ctx.node == self.root:
            self._decided = True
            ctx.memory[self.spec.parent_key] = None
            ctx.memory[self.spec.depth_key] = 0
            ctx.broadcast("bfs", 0)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        offers = [(msg.payload[0], src) for src, msg in inbox if msg.kind == "bfs"]
        for src, msg in inbox:
            if msg.kind == "adopt":
                ctx.memory[self.spec.children_key].append(src)
        if self._decided or not offers:
            return
        depth, parent = min(offers, key=_offer_order)
        self._decided = True
        ctx.memory[self.spec.parent_key] = parent
        ctx.memory[self.spec.depth_key] = depth + 1
        ctx.send(parent, "adopt")
        ctx.multicast(
            [v for v in ctx.neighbors if v != parent], "bfs", depth + 1
        )


def _offer_order(offer: tuple[int, NodeId]):
    depth, src = offer
    return (depth, repr(src)) if not isinstance(src, int) else (depth, src)


def build_bfs_tree(network, root: Optional[NodeId] = None, spec: TreeSpec = BFS_TREE):
    """Driver helper: run :class:`BFSTreeBuild` on ``network``.

    Returns the phase result; the tree lives in node memory afterwards.
    The root defaults to the minimum node id (a common symmetry-breaking
    convention; electing it by flooding costs another O(D), which callers
    can charge if they model leaderless starts).
    """
    chosen = root if root is not None else min(network.nodes)
    return network.run_phase("bfs-tree", lambda u: BFSTreeBuild(chosen, spec))
