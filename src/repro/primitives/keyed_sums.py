"""Pipelined keyed sums: k independent subtree sums in O(depth + k) rounds.

This primitive implements the pipelining trick behind Step 5 of the
paper (and Kutten–Peleg-style upcasts in general).  Every node holds a
multiset of ``(key, value)`` contributions; for every key we want the sum
of contributions over each subtree.  A naive solution waits for whole
subtrees and costs O(depth · k) rounds; the classic fix is **monotone
streaming**: every node emits its finished ``(key, sum)`` pairs in
globally increasing key order, so a node can finalise key ``K`` as soon
as every child's stream has advanced past ``K`` — the watermark rule.
The streams then interleave perfectly and the whole computation finishes
in O(depth + k) rounds.

Two consumption modes, matching the paper's two uses:

* ``capture_own_key=True`` (Step 5 type (ii)): the sum for key ``v``
  (a node id) is *absorbed* when the stream passes through node ``v``
  itself — every node ends up knowing the count of ⟨v⟩ messages in its
  own fragment-subtree.  Keys flowing through a node that does not own
  them continue upward.
* ``capture_own_key=False`` (Step 5 type (i)): all sums travel to the
  tree root, which records the full ``{key: total}`` map (then typically
  gossips it).
"""

from __future__ import annotations

import heapq
from collections.abc import Callable, Iterable

from ..congest.node import Inbox, NodeContext, NodeProgram
from .treespec import TreeSpec

ContributionsFn = Callable[[NodeContext], Iterable[tuple]]

_NOTHING = object()


class PipelinedKeyedSum(NodeProgram):
    """Sum values per key over every subtree, pipelined (see module doc).

    Parameters
    ----------
    spec:
        The tree to aggregate over.
    contributions:
        Callable returning this node's own ``(key, value)`` pairs.  Keys
        must be mutually comparable (ints in all library uses) and each
        key may appear multiple times (values are summed).
    out_key:
        Memory key for results.  With ``capture_own_key`` the captured
        sum is stored there (a number); at the root the full dict of
        sums that reached it is stored at ``out_key + ":root"``.
    capture_own_key:
        Absorb key ``K`` at node ``K`` instead of forwarding (the key
        space must then be node ids).
    """

    VALUE_KIND = "ks"
    DONE_KIND = "ks!"

    def __init__(
        self,
        spec: TreeSpec,
        contributions: ContributionsFn,
        out_key: str = "ks:sum",
        capture_own_key: bool = False,
    ) -> None:
        self.spec = spec
        self.contributions = contributions
        self.out_key = out_key
        self.capture_own_key = capture_own_key
        self._buffer: dict = {}
        self._heap: list = []
        self._watermark: dict = {}
        self._done_sent = False
        self._children: list = []
        self._parent = None

    def on_start(self, ctx: NodeContext) -> None:
        self._children = list(self.spec.children(ctx))
        self._parent = self.spec.parent(ctx)
        self._watermark = {c: _NOTHING for c in self._children}
        if self.capture_own_key:
            ctx.memory[self.out_key] = 0
        for key, value in self.contributions(ctx):
            self._accumulate(key, value)
        self._try_emit(ctx)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        for src, msg in inbox:
            if msg.kind == self.VALUE_KIND:
                key, value = msg.payload
                self._accumulate(key, value)
                self._watermark[src] = key
            elif msg.kind == self.DONE_KIND:
                self._watermark[src] = _DONE
        self._try_emit(ctx)

    # ------------------------------------------------------------------
    def _accumulate(self, key, value) -> None:
        if key in self._buffer:
            self._buffer[key] += value
        else:
            self._buffer[key] = value
            heapq.heappush(self._heap, key)

    def _children_past(self, key) -> bool:
        """True when every child's stream has advanced to ``key`` or
        beyond (so no further contribution to ``key`` can arrive)."""
        for mark in self._watermark.values():
            if mark is _NOTHING:
                return False
            if mark is _DONE:
                continue
            if mark < key:
                return False
        return True

    def _all_children_done(self) -> bool:
        return all(mark is _DONE for mark in self._watermark.values())

    def _try_emit(self, ctx: NodeContext) -> None:
        parent = self._parent
        while self._heap:
            key = self._heap[0]
            if not self._children_past(key):
                return
            heapq.heappop(self._heap)
            value = self._buffer.pop(key)
            if self.capture_own_key and key == ctx.node:
                ctx.memory[self.out_key] = value
                ctx.output(self.out_key, value)
            elif parent is None:
                root_map = ctx.memory.setdefault(f"{self.out_key}:root", {})
                root_map[key] = value
            else:
                ctx.send(parent, self.VALUE_KIND, key, value)
        if not self._done_sent and self._all_children_done() and not self._buffer:
            self._done_sent = True
            if parent is not None:
                ctx.send(parent, self.DONE_KIND)


class BlockingKeyedSum(NodeProgram):
    """The *unpipelined* strawman: wait for whole subtrees per node.

    Identical semantics to :class:`PipelinedKeyedSum` but every node
    buffers until **all** children have finished before emitting
    anything, so streams never interleave — worst-case O(depth · k)
    rounds instead of O(depth + k).  Exists purely as the ablation
    comparator (benchmark A2) quantifying what the paper's pipelining
    trick buys; never used by the algorithm itself.
    """

    VALUE_KIND = "bk"
    DONE_KIND = "bk!"

    def __init__(
        self,
        spec: TreeSpec,
        contributions: ContributionsFn,
        out_key: str = "bks:sum",
        capture_own_key: bool = False,
    ) -> None:
        self.spec = spec
        self.contributions = contributions
        self.out_key = out_key
        self.capture_own_key = capture_own_key
        self._sums: dict = {}
        self._waiting: set = set()

    def on_start(self, ctx: NodeContext) -> None:
        if self.capture_own_key:
            ctx.memory[self.out_key] = 0
        for key, value in self.contributions(ctx):
            self._sums[key] = self._sums.get(key, 0) + value
        self._waiting = set(self.spec.children(ctx))
        if not self._waiting:
            self._emit(ctx)

    def on_round(self, ctx: NodeContext, inbox: Inbox) -> None:
        for src, msg in inbox:
            if msg.kind == self.VALUE_KIND:
                key, value = msg.payload
                self._sums[key] = self._sums.get(key, 0) + value
            elif msg.kind == self.DONE_KIND:
                self._waiting.discard(src)
        if not self._waiting:
            self._emit(ctx)

    def _emit(self, ctx: NodeContext) -> None:
        self._waiting = {None}  # guard against re-emission
        parent = self.spec.parent(ctx)
        for key in sorted(self._sums, key=repr):
            value = self._sums[key]
            if self.capture_own_key and key == ctx.node:
                ctx.memory[self.out_key] = value
                ctx.output(self.out_key, value)
            elif parent is None:
                ctx.memory.setdefault(f"{self.out_key}:root", {})[key] = value
            else:
                ctx.send(parent, self.VALUE_KIND, key, value)
        if parent is not None:
            ctx.send(parent, self.DONE_KIND)


class _DoneSentinel:
    """Watermark sentinel: the child's stream is complete."""

    def __repr__(self) -> str:  # pragma: no cover
        return "<done>"


_DONE = _DoneSentinel()
